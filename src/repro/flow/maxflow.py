"""Dinic's maximum-flow algorithm.

Used by the Theorem 1 reduction machinery (the MFCGS source problem is a
max-flow problem with a conflict graph) and exposed as a general substrate.
Operates on the same :class:`repro.flow.network.FlowNetwork` as the
min-cost solver.
"""

from __future__ import annotations

from collections import deque

from repro.flow.network import FlowNetwork


def max_flow(network: FlowNetwork, source: int, sink: int) -> int:
    """Compute the maximum ``source -> sink`` flow with Dinic's algorithm.

    The network's arc flows are updated in place; the return value is the
    total units routed by this call.
    """
    if source == sink:
        return 0
    total = 0
    while True:
        level = _bfs_levels(network, source, sink)
        if level[sink] < 0:
            return total
        iters = [0] * network.n_nodes
        while True:
            pushed = _dfs_push(network, source, sink, float("inf"), level, iters)
            if pushed == 0:
                break
            total += pushed


def _bfs_levels(network: FlowNetwork, source: int, sink: int) -> list[int]:
    level = [-1] * network.n_nodes
    level[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for arc_index in network.adjacency[node]:
            arc = network.arcs[arc_index]
            if arc.residual > 0 and level[arc.head] < 0:
                level[arc.head] = level[node] + 1
                queue.append(arc.head)
    return level


def _dfs_push(
    network: FlowNetwork,
    node: int,
    sink: int,
    limit: float,
    level: list[int],
    iters: list[int],
) -> int:
    if node == sink:
        return int(limit)
    adjacency = network.adjacency[node]
    while iters[node] < len(adjacency):
        arc_index = adjacency[iters[node]]
        arc = network.arcs[arc_index]
        if arc.residual > 0 and level[arc.head] == level[node] + 1:
            pushed = _dfs_push(
                network, arc.head, sink, min(limit, arc.residual), level, iters
            )
            if pushed > 0:
                network.push(arc_index, pushed)
                return pushed
        iters[node] += 1
    return 0
