"""Residual flow-network representation.

Arcs are stored in a single flat list where the arc at index ``i`` and the
arc at index ``i ^ 1`` are a forward/backward residual pair. This is the
classic competitive-programming layout: pushing ``f`` units along arc ``i``
is ``arcs[i].flow += f; arcs[i ^ 1].flow -= f`` and the residual capacity of
any arc is ``cap - flow``. The layout keeps augmentation O(path length)
with no hashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import FlowError


@dataclass
class ResidualArrays:
    """Array view of a :class:`FlowNetwork` for vectorised relaxation.

    Every per-arc attribute is a numpy array indexed by arc id, in the
    same order as ``network.arcs`` (so residual twins still live at
    ``i ^ 1``). Adjacency is CSR-style: the outgoing arc ids of ``node``
    are ``arc_ids[indptr[node]:indptr[node + 1]]``, concatenated in the
    same order as the scalar adjacency lists so any iteration order
    dependence (tie-breaking on equal labels) is preserved exactly.

    ``flow`` is the mutable column; :meth:`FlowNetwork.push` keeps it in
    sync with the ``Arc`` objects while the view is current.
    """

    head: np.ndarray
    tail: np.ndarray
    cap: np.ndarray
    cost: np.ndarray
    flow: np.ndarray
    indptr: np.ndarray
    arc_ids: np.ndarray

    @classmethod
    def from_network(cls, network: FlowNetwork) -> ResidualArrays:
        n_arcs = len(network.arcs)
        head = np.fromiter(
            (arc.head for arc in network.arcs), dtype=np.int64, count=n_arcs
        )
        tail = np.empty(n_arcs, dtype=np.int64)
        # The twin of arc i points back at i's tail, so tail[i] = head[i ^ 1].
        tail[0::2] = head[1::2]
        tail[1::2] = head[0::2]
        cap = np.fromiter(
            (arc.cap for arc in network.arcs), dtype=np.int64, count=n_arcs
        )
        cost = np.fromiter(
            (arc.cost for arc in network.arcs), dtype=np.float64, count=n_arcs
        )
        flow = np.fromiter(
            (arc.flow for arc in network.arcs), dtype=np.int64, count=n_arcs
        )
        counts = np.fromiter(
            (len(out) for out in network.adjacency),
            dtype=np.int64,
            count=network.n_nodes,
        )
        indptr = np.zeros(network.n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if network.adjacency:
            arc_ids = np.concatenate(
                [np.asarray(out, dtype=np.int64) for out in network.adjacency]
            ) if n_arcs else np.empty(0, dtype=np.int64)
        else:
            arc_ids = np.empty(0, dtype=np.int64)
        return cls(
            head=head,
            tail=tail,
            cap=cap,
            cost=cost,
            flow=flow,
            indptr=indptr,
            arc_ids=arc_ids,
        )

    @property
    def n_arcs(self) -> int:
        return self.head.shape[0]

    def residual(self) -> np.ndarray:
        """Remaining capacity per arc id."""
        return self.cap - self.flow

    def out_arcs(self, node: int) -> np.ndarray:
        """Outgoing arc ids of ``node`` in scalar adjacency order."""
        return self.arc_ids[self.indptr[node] : self.indptr[node + 1]]


@dataclass
class Arc:
    """One directed arc of the residual network.

    Attributes:
        head: Node the arc points to.
        cap: Total capacity of the arc (0 for pure residual arcs).
        cost: Cost per unit of flow. The paired residual arc carries
            ``-cost``.
        flow: Current flow on the arc; may be negative on residual arcs.
    """

    head: int
    cap: int
    cost: float
    flow: int = 0

    @property
    def residual(self) -> int:
        """Remaining capacity available for augmentation."""
        return self.cap - self.flow


@dataclass
class FlowNetwork:
    """A directed flow network with paired residual arcs.

    Build with :meth:`add_node` / :meth:`add_arc`, then hand to
    :class:`repro.flow.sspa.SuccessiveShortestPaths` or
    :func:`repro.flow.maxflow.max_flow`.
    """

    n_nodes: int = 0
    arcs: list[Arc] = field(default_factory=list)
    adjacency: list[list[int]] = field(default_factory=list)
    _arrays: ResidualArrays | None = field(default=None, repr=False, compare=False)

    def as_arrays(self) -> ResidualArrays:
        """Array view of the network, rebuilt when the topology grew.

        The returned view's ``flow`` array is kept in sync by
        :meth:`push` / :meth:`reset_flow` until the next ``add_arc``.
        """
        if self._arrays is None or self._arrays.n_arcs != len(self.arcs):
            self._arrays = ResidualArrays.from_network(self)
        return self._arrays

    def add_node(self) -> int:
        """Append a node and return its index."""
        self.adjacency.append([])
        self.n_nodes += 1
        return self.n_nodes - 1

    def add_nodes(self, count: int) -> range:
        """Append ``count`` nodes, returning the range of new indices."""
        if count < 0:
            raise FlowError(f"cannot add a negative number of nodes: {count}")
        start = self.n_nodes
        for _ in range(count):
            self.add_node()
        return range(start, self.n_nodes)

    def add_arc(self, tail: int, head: int, cap: int, cost: float = 0.0) -> int:
        """Add a ``tail -> head`` arc plus its residual twin.

        Returns the index of the forward arc; the twin lives at
        ``index ^ 1``.
        """
        self._check_node(tail)
        self._check_node(head)
        if cap < 0:
            raise FlowError(f"arc capacity must be non-negative, got {cap}")
        index = len(self.arcs)
        self.arcs.append(Arc(head=head, cap=cap, cost=cost))
        self.arcs.append(Arc(head=tail, cap=0, cost=-cost))
        self.adjacency[tail].append(index)
        self.adjacency[head].append(index + 1)
        return index

    def push(self, arc_index: int, amount: int) -> None:
        """Push ``amount`` units along ``arc_index`` and update its twin."""
        arc = self.arcs[arc_index]
        if amount > arc.residual:
            raise FlowError(
                f"push of {amount} exceeds residual {arc.residual} on arc {arc_index}"
            )
        arc.flow += amount
        self.arcs[arc_index ^ 1].flow -= amount
        arrays = self._arrays
        if arrays is not None and arrays.n_arcs == len(self.arcs):
            arrays.flow[arc_index] += amount
            arrays.flow[arc_index ^ 1] -= amount

    def flow_on(self, arc_index: int) -> int:
        """Net flow currently routed on a forward arc."""
        return self.arcs[arc_index].flow

    def total_cost(self) -> float:
        """Total cost of the current flow (forward arcs only)."""
        return sum(
            arc.flow * arc.cost
            for i, arc in enumerate(self.arcs)
            if i % 2 == 0 and arc.flow > 0
        )

    def reset_flow(self) -> None:
        """Zero out all flow, keeping the topology."""
        for arc in self.arcs:
            arc.flow = 0
        if self._arrays is not None:
            self._arrays.flow.fill(0)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise FlowError(f"node {node} out of range [0, {self.n_nodes})")
