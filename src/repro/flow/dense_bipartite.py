"""Dense successive-shortest-paths for capacitated bipartite assignment.

Algorithm 1's flow network has a fixed tripartite shape: a source feeding
every event (capacity ``c_v``), a *complete* bipartite middle layer of
unit-capacity event-to-user arcs (cost ``1 - sim``), and every user
feeding the sink (capacity ``c_u``). This module implements successive
shortest paths with Johnson potentials as a **block kernel**: each search
starts from one masked column reduction over the cost tile (the reduced
length of every direct ``s -> v -> u`` path at once) and then runs
vectorised Bellman-Ford sweeps over the *residual* (matched) arcs only --
there are at most Delta of those, so a sweep is a handful of small array
ops instead of a Python loop over every node. Early augmentations, whose
shortest path is a direct one, converge with zero sweeps.

The kernel's arithmetic is part of its contract, because arrangements
built on it must be digest-reproducible:

* direct labels: ``dist_u = min_v costs_masked[v, u] - pot_u[u]`` where
  ``costs_masked`` carries ``inf`` on saturated arcs and closed events;
* residual arcs: ``cres = (-costs[v, u] + pot_u[u]) - pot_v[v]``;
* sweep row relaxation: ``((costs[v, u] + pot_v[v]) - pot_u[u]) + dist_v``;
* sweeps are two-phase (all event labels from the pre-sweep user labels,
  then all user labels from the changed event rows), improvements are
  strict, and every argmin tie resolves to the lowest index.

``repro.flow.reference.ReferenceBipartiteMinCostFlow`` implements the
same specification with scalar loops; the kernel-equivalence property
suite asserts bit-identical flows, ties included.

Every middle arc has capacity 1, so each augmenting path carries exactly
one unit: the Delta-sweep of Algorithm 1 falls out one augmentation at a
time, and because successive path costs are non-decreasing the sweep can
stop as soon as the marginal path cost reaches 1 (a unit that adds nothing
to MaxSum). Both the early-stopping and full-sweep behaviours are exposed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FlowError

#: parent_u markers: the label came from a direct source path, or was
#: improved by a residual sweep (feeding event recovered by equality).
_SOURCE_FED = -1
_SWEEP_FED = -3


class DenseBipartiteMinCostFlow:
    """SSP min-cost flow on the source/events/users/sink network.

    Args:
        costs: ``(|V|, |U|)`` middle-arc costs (each arc has capacity 1).
        event_capacities: Source-to-event capacities ``c_v``.
        user_capacities: User-to-sink capacities ``c_u``.

    After construction, call :meth:`augment` repeatedly (each call routes
    one unit along the cheapest augmenting path) or :meth:`run`. The unit
    flow on middle arcs is exposed as the boolean matrix :attr:`flow`.
    """

    def __init__(
        self,
        costs: np.ndarray,
        event_capacities: np.ndarray,
        user_capacities: np.ndarray,
    ) -> None:
        costs = np.ascontiguousarray(costs, dtype=np.float64)
        if costs.ndim != 2:
            raise FlowError(f"costs must be 2-D, got shape {costs.shape}")
        if np.any(costs < 0):
            raise FlowError("dense SSP requires non-negative arc costs")
        self.costs = costs
        self.n_events, self.n_users = costs.shape
        self.event_capacities = np.asarray(event_capacities, dtype=np.int64)
        self.user_capacities = np.asarray(user_capacities, dtype=np.int64)
        if self.event_capacities.shape != (self.n_events,):
            raise FlowError("event capacities misshaped")
        if self.user_capacities.shape != (self.n_users,):
            raise FlowError("user capacities misshaped")
        self.flow = np.zeros(costs.shape, dtype=bool)
        self.event_used = np.zeros(self.n_events, dtype=np.int64)
        self.user_used = np.zeros(self.n_users, dtype=np.int64)
        self.total_flow = 0
        self.total_cost = 0.0
        self._pot_v = np.zeros(self.n_events, dtype=np.float64)
        self._pot_u = np.zeros(self.n_users, dtype=np.float64)
        self._pot_t = 0.0
        # Source-relax view of the cost tile: +inf where the forward arc
        # has no residual capacity (saturated pair or closed event).
        # Maintained incrementally -- saturation flips are O(path) scalar
        # writes, an event closing is one row fill, and both transitions
        # are monotone within a search.
        self._costs_masked = self.costs.copy()
        for v in np.flatnonzero(self.event_capacities == 0):
            self._costs_masked[v, :] = np.inf
        # Users with no sink capacity left; kept current by _commit.
        self._closed_u = self.user_capacities <= 0
        self._exhausted = False
        self._cached_search: _Search | None = None
        # Search scratch (safe to reuse: a search's buffers are consumed
        # by the following _commit before the next search runs).
        self._parent_u_buf = np.empty(self.n_users, dtype=np.int64)
        self._tvals_buf = np.empty(self.n_users, dtype=np.float64)

    @property
    def exhausted(self) -> bool:
        """True once the sink became unreachable (max flow reached)."""
        return self._exhausted

    def augment(self) -> float | None:
        """Route one unit along the cheapest augmenting path.

        Returns:
            The path's true (un-reduced) cost, or None when no augmenting
            path exists.
        """
        if self._exhausted:
            return None
        found = self._take_search()
        if found is None:
            return None
        self._commit(found)
        return found.path_cost

    def run(self, amount: int | None = None, stop_cost: float | None = None) -> int:
        """Augment until ``amount`` units routed, exhaustion, or stop_cost.

        Args:
            amount: Max units to route (None = to max flow).
            stop_cost: Stop *before* pushing a path costing >= this.

        Returns:
            Units routed by this call.
        """
        routed = 0
        while amount is None or routed < amount:
            if self._exhausted:
                break
            found = self._take_search()
            if found is None:
                break
            if stop_cost is not None and found.path_cost >= stop_cost:
                # Costs only go up from here; keep the search so a later
                # call with a looser stop does not redo it.
                self._cached_search = found
                break
            self._commit(found)
            routed += 1
        return routed

    def _take_search(self) -> "_Search | None":
        """Pop the cached search or run a fresh one; flags exhaustion."""
        found = self._cached_search
        self._cached_search = None
        if found is None:
            found = self._shortest_path()
        if found is None:
            self._exhausted = True
        return found

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _shortest_path(self) -> "_Search | None":
        """One shortest-path search in reduced costs.

        Phase 1 labels every user with its cheapest *direct* path in one
        masked column reduction. Phase 2 runs two-phase Bellman-Ford
        sweeps over the matched (residual) arcs until fixpoint -- each
        sweep is O(|M|) gathers plus one (changed rows x |U|) tile relax.
        Returns None when the sink is unreachable.
        """
        nv, nu = self.n_events, self.n_users
        if nv == 0 or nu == 0:
            return None
        costs, pot_v, pot_u = self.costs, self._pot_v, self._pot_u

        # Phase 1: direct labels. costs_masked already carries inf on
        # saturated arcs and closed events, so one reduction does the
        # whole source layer.
        dist_u = self._costs_masked.min(axis=0)
        dist_u -= pot_u
        parent_u = self._parent_u_buf
        parent_u.fill(_SOURCE_FED)
        dist_v = np.where(
            self.event_used < self.event_capacities, -pot_v, np.inf
        )

        # Direct sink distance (sink relaxation over open users).
        tvals = self._tvals_buf
        np.add(dist_u, pot_u, out=tvals)
        tvals -= self._pot_t
        tvals[self._closed_u] = np.inf
        parent_t = int(tvals.argmin())
        t_direct = float(tvals[parent_t])

        # Phase 2: residual sweeps. Matched arcs in row-major (v, u)
        # order; both phases of a sweep read the labels produced by the
        # previous phase, improvements are strict, ties keep the earliest
        # (lowest-index) writer.
        mv, mu = self.flow.nonzero()
        if mv.shape[0]:
            cres = (-costs[mv, mu] + pot_u[mu]) - pot_v[mv]
            # Generation 1 considers every matched arc at once (every
            # user label was just set): segmented min per event over the
            # row-major arc list (mv is sorted).
            head = np.empty(mv.shape[0], dtype=bool)
            head[0] = True
            np.not_equal(mv[1:], mv[:-1], out=head[1:])
            starts = head.nonzero()[0]
            seg_v = mv[starts]
            cand = dist_u[mu] + cres
            seg_min = np.minimum.reduceat(cand, starts)
            changed = seg_min < dist_v[seg_v]
            vc = seg_v[changed]
            # Dijkstra cut: every label on a residual path is at least
            # its first improved event label (reduced costs >= 0), so if
            # no improved event undercuts the direct sink distance no
            # residual path can win -- and every label below dist_t is
            # already exact, which is all the potential clamp needs.
            if vc.shape[0] and seg_min[changed].min() < t_direct:
                max_gens = nu + nv + 2
                for _ in range(max_gens):
                    dist_v[vc] = seg_min[changed]
                    # parent_v is recovered by equality at path-walk
                    # time. Row relaxation keeps the canonical
                    # association ((cost + pot_v) - pot_u) + dist_v in
                    # both branches.
                    if vc.shape[0] == 1:
                        v = int(vc[0])
                        rows = costs[v] + pot_v[v]
                        rows -= pot_u
                        rows += dist_v[v]
                        rows[self.flow[v]] = np.inf  # saturated
                        improve = rows < dist_u
                        if not improve.any():
                            break
                        dist_u[improve] = rows[improve]
                        parent_u[improve] = _SWEEP_FED
                    else:
                        rows = costs[vc] + pot_v[vc, None]
                        rows -= pot_u
                        rows += dist_v[vc, None]
                        rows[self.flow[vc]] = np.inf  # saturated
                        colmin = rows.min(axis=0)
                        improve = colmin < dist_u
                        if not improve.any():
                            break
                        dist_u[improve] = colmin[improve]
                        # The feeding event is recovered by equality at
                        # path-walk time; only mark that one exists.
                        parent_u[improve] = _SWEEP_FED
                    # Fixpoint check: if no improved user feeds a
                    # residual arc, the candidate vector cannot change
                    # -- skip the verification sweep entirely.
                    if not improve[mu].any():
                        break
                    cand = dist_u[mu] + cres
                    seg_min = np.minimum.reduceat(cand, starts)
                    changed = seg_min < dist_v[seg_v]
                    vc = seg_v[changed]
                    if not vc.shape[0]:
                        break
                # Labels moved; rebuild the sink relaxation.
                np.add(dist_u, pot_u, out=tvals)
                tvals -= self._pot_t
                tvals[self._closed_u] = np.inf
                parent_t = int(tvals.argmin())

        dist_t = float(tvals[parent_t])
        if np.isinf(dist_t):
            return None
        return _Search(
            dist_v=dist_v,
            dist_u=dist_u,
            dist_t=dist_t,
            parent_u=parent_u,
            parent_t=parent_t,
            path_cost=dist_t + self._pot_t,
        )

    def _parent_event_of(self, u: int, search: "_Search") -> int:
        """The event feeding ``u`` on the shortest-path tree.

        Labels are recovered by equality against the exact expression
        that produced them (lowest event index first): the masked cost
        column for source-fed labels, the sweep row relaxation for
        sweep-fed ones. At fixpoint the producing expression reproduces
        the stored label bit-for-bit, because improvements are strict.
        """
        if search.parent_u[u] == _SOURCE_FED:
            column = self._costs_masked[:, u] - self._pot_u[u]
        else:
            column = (self.costs[:, u] + self._pot_v) - self._pot_u[u]
            column += search.dist_v
            column[self.flow[:, u]] = np.inf  # saturated: no residual
        hits = column == search.dist_u[u]  # geacc-lint: disable=R2 reason=labels are recovered by exact equality against their producing expression
        first = int(hits.argmax())  # first True, or 0 when none
        if hits[first]:
            return first
        # Float-noise guard (a 1-ulp drift between fold orders cannot
        # happen at the fixpoint, but never walk off the tree).
        return int(column.argmin())

    def _parent_user_of(self, v: int, search: "_Search") -> int:
        """The matched user feeding ``v`` through its residual arc."""
        costs, pot_u, pot_v = self.costs, self._pot_u, self._pot_v
        target = search.dist_v[v]
        best = -1
        best_cand = np.inf
        for u in np.flatnonzero(self.flow[v]):
            cand = search.dist_u[u] + ((-costs[v, u] + pot_u[u]) - pot_v[v])
            if cand == target:
                return int(u)
            if cand < best_cand:
                best_cand = cand
                best = int(u)
        return best  # float-noise guard; nearest candidate

    def _commit(self, search: "_Search") -> None:
        """Flip the path, update potentials, account the unit.

        The path is recovered *before* anything mutates: the equality
        walks read the search-time potentials, flow, and cost mask.
        """
        # Alternating path from the sink back to the source, as
        # (add (v, u), then optionally drop (v, u_prev)) hops.
        adds: list[tuple[int, int]] = []
        drops: list[tuple[int, int]] = []
        u = search.parent_t
        while True:
            v = self._parent_event_of(u, search)
            adds.append((v, u))
            if search.parent_u[u] == _SOURCE_FED:
                break
            u = self._parent_user_of(v, search)
            drops.append((v, u))
        dist_t = search.dist_t
        # Johnson update with the standard clamp at the sink label so all
        # residual reduced costs stay non-negative (unreached labels are
        # inf and clamp to dist_t).
        self._pot_v += np.minimum(search.dist_v, dist_t)
        self._pot_u += np.minimum(search.dist_u, dist_t)
        self._pot_t += dist_t
        sink_u = search.parent_t
        self.user_used[sink_u] += 1
        if self.user_used[sink_u] >= self.user_capacities[sink_u]:
            self._closed_u[sink_u] = True
        for v, u in adds:
            self.flow[v, u] = True
            self._costs_masked[v, u] = np.inf
        source_v = adds[-1][0]
        self.event_used[source_v] += 1
        if self.event_used[source_v] >= self.event_capacities[source_v]:
            self._costs_masked[source_v, :] = np.inf
        for v, u in drops:
            self.flow[v, u] = False
            if self.event_used[v] < self.event_capacities[v]:
                self._costs_masked[v, u] = self.costs[v, u]
        self.total_flow += 1
        self.total_cost += search.path_cost


class _Search:
    """One shortest-path search's labels and parent pointers."""

    __slots__ = ("dist_v", "dist_u", "dist_t", "parent_u", "parent_t", "path_cost")

    def __init__(
        self,
        dist_v: np.ndarray,
        dist_u: np.ndarray,
        dist_t: float,
        parent_u: np.ndarray,
        parent_t: int,
        path_cost: float,
    ) -> None:
        self.dist_v = dist_v
        self.dist_u = dist_u
        self.dist_t = dist_t
        self.parent_u = parent_u
        self.parent_t = parent_t
        self.path_cost = path_cost
