"""Dense successive-shortest-paths for capacitated bipartite assignment.

Algorithm 1's flow network has a fixed tripartite shape: a source feeding
every event (capacity ``c_v``), a *complete* bipartite middle layer of
unit-capacity event-to-user arcs (cost ``1 - sim``), and every user
feeding the sink (capacity ``c_u``). Because the middle layer is dense,
the generic heap-based SSPA (:mod:`repro.flow.sspa`) spends all its time
in Python-level arc relaxation. This module implements the same
successive-shortest-paths algorithm with Johnson potentials, but with the
O(n^2) "dense Dijkstra" (no heap, vectorised relaxation rows/columns) used
by dense Hungarian-algorithm implementations. Each augmentation costs
O((|V| + |U|) * max(|V|, |U|)) numpy work.

Every middle arc has capacity 1, so each augmenting path carries exactly
one unit: the Delta-sweep of Algorithm 1 falls out one augmentation at a
time, and because successive path costs are non-decreasing the sweep can
stop as soon as the marginal path cost reaches 1 (a unit that adds nothing
to MaxSum). Both the early-stopping and full-sweep behaviours are exposed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FlowError


class DenseBipartiteMinCostFlow:
    """SSP min-cost flow on the source/events/users/sink network.

    Args:
        costs: ``(|V|, |U|)`` middle-arc costs (each arc has capacity 1).
        event_capacities: Source-to-event capacities ``c_v``.
        user_capacities: User-to-sink capacities ``c_u``.

    After construction, call :meth:`augment` repeatedly (each call routes
    one unit along the cheapest augmenting path) or :meth:`run`. The unit
    flow on middle arcs is exposed as the boolean matrix :attr:`flow`.
    """

    def __init__(
        self,
        costs: np.ndarray,
        event_capacities: np.ndarray,
        user_capacities: np.ndarray,
    ) -> None:
        costs = np.asarray(costs, dtype=np.float64)
        if costs.ndim != 2:
            raise FlowError(f"costs must be 2-D, got shape {costs.shape}")
        if np.any(costs < 0):
            raise FlowError("dense SSP requires non-negative arc costs")
        self.costs = costs
        self.n_events, self.n_users = costs.shape
        self.event_capacities = np.asarray(event_capacities, dtype=np.int64)
        self.user_capacities = np.asarray(user_capacities, dtype=np.int64)
        if self.event_capacities.shape != (self.n_events,):
            raise FlowError("event capacities misshaped")
        if self.user_capacities.shape != (self.n_users,):
            raise FlowError("user capacities misshaped")
        self.flow = np.zeros(costs.shape, dtype=bool)
        self.event_used = np.zeros(self.n_events, dtype=np.int64)
        self.user_used = np.zeros(self.n_users, dtype=np.int64)
        self.total_flow = 0
        self.total_cost = 0.0
        # Node layout: [0, nv) events, [nv, nv + nu) users, nv + nu = sink.
        self._n_nodes = self.n_events + self.n_users + 1
        self._t = self._n_nodes - 1
        self._potentials = np.zeros(self._n_nodes, dtype=np.float64)
        self._exhausted = False

    @property
    def exhausted(self) -> bool:
        """True once the sink became unreachable (max flow reached)."""
        return self._exhausted

    def augment(self) -> float | None:
        """Route one unit along the cheapest augmenting path.

        Returns:
            The path's true (un-reduced) cost, or None when no augmenting
            path exists.
        """
        if self._exhausted:
            return None
        found = self._dense_dijkstra()
        if found is None:
            self._exhausted = True
            return None
        dist, parent = found
        path_cost = dist[self._t] + self._potentials[self._t]
        np.minimum(dist, dist[self._t], out=dist)
        self._potentials += dist
        self._apply_path(parent)
        self.total_flow += 1
        self.total_cost += path_cost
        return path_cost

    def run(self, amount: int | None = None, stop_cost: float | None = None) -> int:
        """Augment until ``amount`` units routed, exhaustion, or stop_cost.

        Args:
            amount: Max units to route (None = to max flow).
            stop_cost: Stop *before* pushing a path costing >= this.

        Returns:
            Units routed by this call.
        """
        routed = 0
        while amount is None or routed < amount:
            if self._exhausted:
                break
            if stop_cost is not None:
                peek = self._dense_dijkstra()
                if peek is None:
                    self._exhausted = True
                    break
                dist, parent = peek
                path_cost = dist[self._t] + self._potentials[self._t]
                if path_cost >= stop_cost:
                    break
                np.minimum(dist, dist[self._t], out=dist)
                self._potentials += dist
                self._apply_path(parent)
                self.total_flow += 1
                self.total_cost += path_cost
                routed += 1
            else:
                if self.augment() is None:
                    break
                routed += 1
        return routed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _dense_dijkstra(self) -> tuple[np.ndarray, np.ndarray] | None:
        """O(n^2) Dijkstra on reduced costs from source to sink.

        Returns ``(dist, parent)`` with dist in reduced costs (source
        excluded from the arrays; its distance is 0), or None when the
        sink is unreachable.
        """
        nv, nu, t = self.n_events, self.n_users, self._t
        pot = self._potentials
        dist = np.full(self._n_nodes, np.inf)
        parent = np.full(self._n_nodes, -1, dtype=np.int64)
        settled = np.zeros(self._n_nodes, dtype=bool)
        dist_v = dist[:nv]
        dist_u = dist[nv : nv + nu]

        # Relax source arcs: s -> v where capacity remains (cost 0).
        open_events = self.event_used < self.event_capacities
        dist_v[open_events] = -pot[:nv][open_events]
        parent[:nv][open_events] = -2  # predecessor = source

        pot_v = pot[:nv]
        pot_u = pot[nv : nv + nu]
        user_open = self.user_used < self.user_capacities
        while True:
            masked = np.where(settled, np.inf, dist)
            node = int(np.argmin(masked))
            if not np.isfinite(masked[node]):
                return None  # sink unreachable
            settled[node] = True
            if node == t:
                return dist, parent
            d_node = dist[node]
            if node < nv:
                # Forward arcs v -> u on unsaturated middle arcs.
                row_free = ~self.flow[node]
                reduced = self.costs[node] + (pot_v[node] + d_node) - pot_u
                candidate = np.where(row_free, reduced, np.inf)
                improve = candidate < dist_u
                improve &= ~settled[nv : nv + nu]
                if improve.any():
                    dist_u[improve] = candidate[improve]
                    parent[nv : nv + nu][improve] = node
            else:
                u = node - nv
                # Residual arcs u -> v on saturated middle arcs.
                col_used = self.flow[:, u]
                reduced = -self.costs[:, u] + (pot_u[u] + d_node) - pot_v
                candidate = np.where(col_used, reduced, np.inf)
                improve = candidate < dist_v
                improve &= ~settled[:nv]
                if improve.any():
                    dist_v[improve] = candidate[improve]
                    parent[:nv][improve] = node
                # Arc u -> t while the user has sink capacity left.
                if user_open[u]:
                    cand_t = d_node + pot_u[u] - pot[t]
                    if cand_t < dist[t]:
                        dist[t] = cand_t
                        parent[t] = node

    def _apply_path(self, parent: np.ndarray) -> None:
        """Flip flow along the found path: t <- u <- v <- ... <- s."""
        nv = self.n_events
        node = int(parent[self._t])
        self.user_used[node - nv] += 1
        while True:
            pred = int(parent[node])
            if node >= nv:  # user node; predecessor is an event: v -> u
                self.flow[pred, node - nv] = True
            elif pred == -2:  # event node fed straight from the source
                self.event_used[node] += 1
                return
            else:  # event node reached via residual u -> v
                self.flow[node, pred - nv] = False
            node = pred
