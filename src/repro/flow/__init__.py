"""Minimum-cost-flow substrate.

The paper's MinCostFlow-GEACC algorithm (Section III.A) reduces the
conflict-free relaxation of GEACC to a minimum cost flow problem and cites
the Successive Shortest Path Algorithm (SSPA) as the method of choice for
large, many-to-many assignment networks with real-valued arc costs. This
subpackage implements that substrate from scratch:

* :class:`repro.flow.network.FlowNetwork` -- a residual flow network stored
  in paired-arc (forward/backward) adjacency form.
* :class:`repro.flow.sspa.SuccessiveShortestPaths` -- incremental SSPA with
  Johnson potentials and Dijkstra searches, supporting unit-by-unit or
  bottleneck augmentation so the Delta-sweep of Algorithm 1 can observe the
  cost after every amount of flow.
* :func:`repro.flow.maxflow.max_flow` -- Dinic's algorithm, used by the
  Theorem 1 reduction tests and available as a general substrate.
"""

from repro.flow.network import Arc, FlowNetwork
from repro.flow.sspa import SuccessiveShortestPaths, min_cost_flow
from repro.flow.maxflow import max_flow

__all__ = [
    "Arc",
    "FlowNetwork",
    "SuccessiveShortestPaths",
    "min_cost_flow",
    "max_flow",
]
