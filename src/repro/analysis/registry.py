"""Rule plugin architecture: one rule = one class, registered in a table.

New rules are added by subclassing :class:`Rule` and decorating with
:func:`register_rule`; the engine and CLI pick them up automatically.
A rule may implement either (or both) of two hooks:

* :meth:`Rule.check_module` -- called once per parsed file; the common
  case for purely local patterns.
* :meth:`Rule.check_project` -- called once with the whole parsed tree;
  for cross-file invariants such as solver-registry completeness.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, ClassVar

from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.engine import ParsedModule, Project


class Rule:
    """Base class for lint rules.

    Class attributes double as the ``--list-rules`` documentation:

    Attributes:
        rule_id: Stable short identifier (``R1`` .. ``R13``); suppression
            comments and ``--select``/``--ignore`` use it.
        title: One-line summary of what the rule enforces.
        rationale: Why the invariant matters for the GEACC reproduction.
        suppressible: False for rules whose findings ignore
            ``# geacc-lint: disable`` comments (the suppression-hygiene
            rule itself -- else one bare directive could silence the
            audit of bare directives).
    """

    rule_id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    suppressible: ClassVar[bool] = True

    def check_module(self, module: "ParsedModule") -> Iterator[Diagnostic]:
        """Yield findings local to one file (default: none)."""
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Diagnostic]:
        """Yield findings that need the whole file set (default: none)."""
        return iter(())


RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global table."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"rule id {cls.rule_id!r} already registered")
    RULES[cls.rule_id] = cls
    return cls


def load_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """Instantiate registered rules, honouring ``--select``/``--ignore``.

    Importing :mod:`repro.analysis.rules` populates the table as a side
    effect, so callers never have to enumerate rule modules.
    """
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    selected = set(select) if select is not None else None
    ignored = set(ignore) if ignore is not None else set()
    unknown = ((selected or set()) | ignored) - set(RULES)
    if unknown:
        known = ", ".join(sorted(RULES))
        raise ValueError(f"unknown rule id(s) {sorted(unknown)}; known: {known}")
    active = []
    for rule_id in sorted(RULES):
        if selected is not None and rule_id not in selected:
            continue
        if rule_id in ignored:
            continue
        active.append(RULES[rule_id]())
    return active
