"""R13 -- suppression hygiene: every disable carries its why.

A ``# geacc-lint: disable=Rn`` comment is a reviewed exception to an
invariant this package exists to defend; without a recorded reason the
review evaporates -- six months later nobody can tell a justified
exception (replay applies records that are already durable) from a
silenced bug.  So every directive must carry ``reason=<free text>``::

    store.apply(item)  # geacc-lint: disable=R9 reason=replay of durable records

A bare directive still suppresses its rules (silencing is not held
hostage to wording), but becomes a finding itself at the directive's
location.  R13 findings are **unsuppressible** -- marked via
:attr:`~repro.analysis.registry.Rule.suppressible` and enforced by the
engine's filter -- because a rule about suppression comments that a
suppression comment can silence audits nothing.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule


@register_rule
class SuppressionHygieneRule(Rule):
    """Flag ``geacc-lint`` directives that omit ``reason=``."""

    rule_id = "R13"
    title = "suppressions must carry reason=<why this exception is safe>"
    rationale = (
        "a suppression is a reviewed exception; without the recorded "
        "reason the audit trail is gone and silenced bugs look identical "
        "to justified exceptions"
    )
    suppressible = False

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        for directive in module.suppressions.directives:
            if directive.reason:
                continue
            listed = ",".join(sorted(directive.rules))
            yield Diagnostic(
                path=module.display_path,
                line=directive.line,
                col=directive.col,
                rule_id=self.rule_id,
                message=(
                    f"suppression of {listed} has no reason= clause; write "
                    f"`# geacc-lint: {directive.scope}={listed} "
                    "reason=<why this exception is safe>`"
                ),
            )
