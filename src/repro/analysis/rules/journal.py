"""R9 -- journal-before-mutate: the service's write-ahead discipline.

The service's crash story (``docs/service.md``) rests on exactly one
ordering: a command is appended to the fsync'd journal *first*, and the
:class:`~repro.service.store.ArrangementStore` mutates *second*.  Flip
the order anywhere -- even on one early-return or exception path -- and
a crash in the window leaves a store state the journal cannot replay:
recovery silently diverges from what clients were told, which for a
reproduction service means the arrangement numbers after a restart are
no longer the numbers the paper's pipeline produced.

This is a *path* property, so the rule runs the CFG/dataflow framework
(:mod:`repro.analysis.typestate`) rather than a node visitor: within
each function in ``repro.service``, every ``*store*.apply(...)`` call
must be dominated -- on **every** incoming path (must-analysis) -- by a
``*journal*.append(...)``.  The append is *consumed* by the apply it
blesses: two mutations need two appends, so a loop that applies per
iteration must also journal per iteration.

The blessed spine is ``ArrangementService._journal_and_apply``; new
command handlers should route through it instead of journaling by
hand.  Replay (:func:`repro.service.journal.replay`) legitimately
applies without appending -- records are already durable -- and carries
the one reviewed suppression.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.cfg import function_cfgs
from repro.analysis.dataflow import MUST
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule
from repro.analysis.typestate import CallPattern, FlagProtocol, check_flag_protocol

#: Package directory whose modules carry the write-ahead contract.
_SCOPE_DIR = "service"

_PROTOCOL = FlagProtocol(
    flag="journaled",
    mode=MUST,
    sets=(CallPattern("append", frozenset({"journal"})),),
    requires=(CallPattern("apply", frozenset({"store"})),),
    consume=True,
)


@register_rule
class JournalBeforeMutateRule(Rule):
    """Flag store mutations not write-ahead journaled on every path."""

    rule_id = "R9"
    title = "journal before mutate: store.apply must follow Journal.append"
    rationale = (
        "the service acknowledges only what the fsync'd journal holds; a "
        "store mutation any path reaches without a preceding append makes "
        "crash recovery diverge from acknowledged state -- route mutations "
        "through ArrangementService._journal_and_apply"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if _SCOPE_DIR not in module.relparts[:-1]:
            return
        for cfg in function_cfgs(module.tree):
            for violation in check_flag_protocol(cfg, _PROTOCOL):
                yield Diagnostic(
                    path=module.display_path,
                    line=violation.line,
                    col=violation.col,
                    rule_id=self.rule_id,
                    message=(
                        f"{violation.detail}(): store mutation is not "
                        "dominated by a Journal.append on every path "
                        "(write-ahead: append, fsync, then apply -- one "
                        "append per mutation; use _journal_and_apply)"
                    ),
                )
