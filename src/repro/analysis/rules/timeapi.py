"""R6 -- time API: no wall-clock ``time.time()`` in library code.

Budget deadlines and reported running times must survive NTP slews,
daylight-saving jumps and manual clock changes. ``time.time()`` is the
*wall* clock -- it can move backwards -- so an elapsed-time or deadline
computation built on it can mis-fire by hours (the anytime harness would
either never preempt a solver or kill it instantly). The sanctioned
clocks are ``time.monotonic()`` for deadlines (what
:class:`repro.robustness.budget.Budget` uses) and
``time.perf_counter()`` for duration measurements; ``time.time()`` is
acceptable only for human-facing timestamps, which library code under
``src/repro`` has no business producing.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import dotted_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule


@register_rule
class TimeApiRule(Rule):
    """Flag wall-clock time.time() where a monotonic clock is required."""

    rule_id = "R6"
    title = "no time.time(): use time.monotonic() / time.perf_counter()"
    rationale = (
        "wall clocks can jump backwards (NTP, DST); budgets and timings built "
        "on time.time() silently mis-fire -- deadlines need time.monotonic()"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        time_aliases = _time_module_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, time_aliases)

    def _check_import_from(
        self, module: ParsedModule, node: ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        if node.module != "time":
            return
        for alias in node.names:
            if alias.name == "time":
                bound = alias.asname or alias.name
                yield _diag(
                    module, node,
                    f"from time import time (bound as {bound!r}): wall-clock "
                    "time can jump backwards; import monotonic or perf_counter "
                    "instead",
                )

    def _check_call(
        self, module: ParsedModule, node: ast.Call, time_aliases: set[str]
    ) -> Iterator[Diagnostic]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] in time_aliases and parts[1] == "time":
            yield _diag(
                module, node,
                f"call to wall-clock {dotted}(): deadlines and durations must "
                "use time.monotonic() or time.perf_counter()",
            )


def _time_module_aliases(tree: ast.Module) -> set[str]:
    """Names bound to the time module (``import time as t``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


def _diag(module: ParsedModule, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        path=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule_id=TimeApiRule.rule_id,
        message=message,
    )
