"""R15 -- no per-element numpy loops on array-kernel hot paths.

The solver substrates (``core/similarity.py``, ``flow/``, and the
``algorithms/`` package) are built on numpy block kernels: similarity
tiles, residual-array relaxations, chunked top-k candidate generation.
A Python ``for`` loop that walks ``range(len(arr))`` or
``range(arr.shape[0])`` and indexes arrays one element at a time undoes
that design -- every iteration pays interpreter dispatch plus a scalar
``ndarray.__getitem__``, which is exactly the per-pair cost profile this
substrate exists to eliminate (a 40x250 instance regressed ~20x through
such loops before the kernels landed).

Flagged: ``for i in range(len(X))`` / ``for i in range(X.shape[k])``
(any ``range`` arity) whose body subscripts *something* with the loop
variable. Loops that only use the counter arithmetically, and loops over
plain integer locals (``range(n)``), stay silent -- the rule targets the
unambiguous walk-an-array-by-index shape, not every counted loop.

Exempt by name: ``flow/reference.py``, the deliberately scalar reference
implementation the kernel-equivalence suite diffs the kernels against.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import terminal_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule

#: Modules that are scalar on purpose (reference implementations).
_EXEMPT_SUFFIXES = ("flow/reference.py",)


def _in_scope(module: ParsedModule) -> bool:
    if any(module.relpath.endswith(suffix) for suffix in _EXEMPT_SUFFIXES):
        return False
    parents = set(module.relparts[:-1])
    if {"flow", "algorithms"} & parents:
        return True
    return module.relpath.endswith("core/similarity.py") or (
        module.relparts == ("similarity.py",)
    )


def _is_array_length(node: ast.expr) -> bool:
    """True for ``len(X)`` and ``X.shape[k]`` expressions."""
    if (
        isinstance(node, ast.Call)
        and terminal_name(node.func) == "len"
        and len(node.args) == 1
    ):
        return True
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "shape"
    )


def _is_array_range(node: ast.expr) -> bool:
    """True for ``range(...)`` calls bounded by an array length."""
    return (
        isinstance(node, ast.Call)
        and terminal_name(node.func) == "range"
        and any(_is_array_length(arg) for arg in node.args)
    )


def _names_in(node: ast.expr) -> set[str]:
    return {
        inner.id for inner in ast.walk(node) if isinstance(inner, ast.Name)
    }


def _loop_targets(target: ast.expr) -> set[str]:
    return {
        inner.id
        for inner in ast.walk(target)
        if isinstance(inner, ast.Name) and isinstance(inner.ctx, ast.Store)
    }


def _scalar_index_sites(body: list[ast.stmt], loop_vars: set[str]) -> Iterator[ast.Subscript]:
    """Subscripts inside ``body`` whose index uses a loop variable."""
    for statement in body:
        for inner in ast.walk(statement):
            if isinstance(inner, ast.Subscript) and _names_in(inner.slice) & loop_vars:
                yield inner


@register_rule
class VectorLoopRule(Rule):
    """Flag per-element array walks in the kernel-backed subsystems."""

    rule_id = "R15"
    title = (
        "no per-element numpy loops (for over len/shape with scalar "
        "indexing) in core/similarity.py, flow/, and algorithms/"
    )
    rationale = (
        "the solver substrates are numpy block kernels; an element-at-a-time "
        "Python loop over an array reintroduces the per-pair interpreter cost "
        "the kernels were built to remove -- use tiles, segment reductions, "
        "or chunked top-k instead (flow/reference.py, the scalar reference, "
        "is exempt by design)"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if not _in_scope(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not _is_array_range(node.iter):
                continue
            loop_vars = _loop_targets(node.target)
            if not loop_vars:
                continue
            for site in _scalar_index_sites(node.body, loop_vars):
                yield Diagnostic(
                    path=module.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        "per-element numpy loop: range over an array length "
                        "with scalar indexing at line "
                        f"{site.lineno}; replace with a vectorised kernel "
                        "(tile, segment reduction, chunked top-k)"
                    ),
                )
                break  # one finding per loop is enough
