"""R7 -- parallelism: no naked multiprocessing outside ``repro.parallel``.

The parallel sweep executor (:mod:`repro.parallel`) exists so that every
process pool in the tree obeys one set of invariants: the parent is the
sole checkpoint writer, shared-memory segments are created/closed/
unlinked along an audited lifecycle, start methods are selected (never
mutated globally), and results stay deterministic regardless of
completion order. A ``multiprocessing.Pool`` spun up anywhere else
silently re-opens every one of those holes -- two writers on one JSONL
checkpoint, leaked POSIX shm segments, fork-after-thread deadlocks --
so this rule flags process-based parallelism primitives everywhere
except under a ``parallel/`` package directory:

* constructing ``multiprocessing.Pool`` / ``Process`` (or importing
  them from ``multiprocessing`` / ``multiprocessing.pool``);
* ``concurrent.futures.ProcessPoolExecutor`` likewise;
* ``multiprocessing.get_context(...)`` (the gateway to a pool) and
  ``set_start_method(...)`` (mutates interpreter-global state -- not
  acceptable in library code anywhere, but the parallel package selects
  contexts locally instead and never calls it).

Thread pools are untouched: they share the parent's memory and cannot
corrupt checkpoints or leak shm segments.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import dotted_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule

#: Modules whose process primitives are corralled into repro.parallel.
_MP_MODULES = frozenset({"multiprocessing", "multiprocessing.pool"})
_FUTURES_MODULES = frozenset({"concurrent.futures"})

#: Attribute/function names that create or configure worker processes.
_MP_BANNED = frozenset({"Pool", "Process", "get_context", "set_start_method"})
_FUTURES_BANNED = frozenset({"ProcessPoolExecutor"})

#: Package directory whose modules own the pooling machinery.
_EXEMPT_DIR = "parallel"


@register_rule
class ParallelismRule(Rule):
    """Flag process-pool primitives used outside ``repro.parallel``."""

    rule_id = "R7"
    title = "no naked multiprocessing outside repro.parallel"
    rationale = (
        "ad-hoc pools break the sweep invariants (single checkpoint writer, "
        "shm lifecycle, deterministic merges); route process parallelism "
        "through repro.parallel.run_cell_groups"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if _EXEMPT_DIR in module.relparts[:-1]:
            return
        mp_aliases, futures_aliases = _module_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    module, node, mp_aliases, futures_aliases
                )

    def _check_import_from(
        self, module: ParsedModule, node: ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        if node.module in _MP_MODULES:
            banned = _MP_BANNED
        elif node.module in _FUTURES_MODULES:
            banned = _FUTURES_BANNED
        else:
            return
        for alias in node.names:
            if alias.name in banned:
                bound = alias.asname or alias.name
                yield _diag(
                    module, node,
                    f"from {node.module} import {alias.name} (bound as "
                    f"{bound!r}): process pools belong to repro.parallel -- "
                    "use run_cell_groups instead",
                )

    def _check_call(
        self,
        module: ParsedModule,
        node: ast.Call,
        mp_aliases: set[str],
        futures_aliases: set[str],
    ) -> Iterator[Diagnostic]:
        dotted = dotted_name(node.func)
        if dotted is None or "." not in dotted:
            return
        prefix, _, attr = dotted.rpartition(".")
        if prefix in mp_aliases and attr in _MP_BANNED:
            yield _diag(
                module, node,
                f"{dotted}(): process parallelism outside repro.parallel; "
                "use repro.parallel.run_cell_groups (and never mutate the "
                "global start method)",
            )
        elif prefix in futures_aliases and attr in _FUTURES_BANNED:
            yield _diag(
                module, node,
                f"{dotted}(): process pools belong to repro.parallel -- "
                "use run_cell_groups instead",
            )


def _module_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names bound to multiprocessing[.pool] and concurrent.futures.

    Covers ``import multiprocessing [as mp]`` (with ``mp.pool`` also
    reachable through the bare binding) and ``from concurrent import
    futures [as cf]``.
    """
    mp: set[str] = set()
    futures: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _MP_MODULES:
                    bound = alias.asname or alias.name.partition(".")[0]
                    mp.add(bound)
                    mp.add(bound + ".pool")
                elif alias.name in _FUTURES_MODULES:
                    futures.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "concurrent":
                for alias in node.names:
                    if alias.name == "futures":
                        futures.add(alias.asname or alias.name)
    return mp, futures


def _diag(module: ParsedModule, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        path=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule_id=ParallelismRule.rule_id,
        message=message,
    )
