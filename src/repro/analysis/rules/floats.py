"""R2 -- float discipline: no ``==``/``!=`` on similarity/objective floats.

Scoped to ``core/`` and ``flow/``: the modules where MaxSum objectives,
cosine similarities and flow costs live.  Exact equality between
floating-point objective expressions is how "same MaxSum" checks pass
on one platform and fail on another (summation order, FMA, BLAS); the
tolerance helpers in :mod:`repro.core.numeric` exist precisely so call
sites never write ``a == b`` on floats.

Detection is syntactic (no type inference): an operand counts as
float-typed when it is a float literal, a ``float(...)`` cast, true
division, or a name/attribute/call whose identifier contains a
similarity/objective token (``sim``, ``cost``, ``score``, ``maxsum``,
...).  Intentional exact comparisons (e.g. staleness checks on values
copied bit-for-bit) carry a ``# geacc-lint: disable=R2`` audit comment.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import terminal_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule

#: Identifier tokens (underscore-separated) that signal a float-valued
#: similarity / objective / cost expression in this codebase.
FLOAT_TOKENS = frozenset(
    {
        "sim", "sims", "similarity", "similarities",
        "score", "scores", "cost", "costs",
        "maxsum", "sum", "objective", "objectives",
        "priority", "priorities", "satisfaction",
        "weight", "weights", "gain", "gains",
        "bound", "bounds", "dist", "distance", "distances",
        "tol", "eps", "epsilon",
    }
)

#: Directory components the rule is scoped to.
_SCOPED_DIRS = frozenset({"core", "flow"})


def _identifier_tokens(name: str) -> set[str]:
    return set(name.lower().split("_"))


def _is_float_typed(node: ast.expr) -> bool:
    """Heuristic: does this expression syntactically read as a float?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_typed(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division always yields float
        return _is_float_typed(node.left) or _is_float_typed(node.right)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            return True
        name = terminal_name(node.func)
        return name is not None and _identifier_tokens(name) & FLOAT_TOKENS != set()
    if isinstance(node, ast.Subscript):
        return _is_float_typed(node.value)
    name = terminal_name(node)
    if name is not None:
        return _identifier_tokens(name) & FLOAT_TOKENS != set()
    return False


def _is_exempt_operand(node: ast.expr) -> bool:
    """Comparisons against None/str/bool are identity-ish, never float."""
    return isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (str, bool))
    )


@register_rule
class FloatComparisonRule(Rule):
    """Flag exact float equality in the objective-bearing subsystems."""

    rule_id = "R2"
    title = "no ==/!= between float similarity/objective expressions in core/ and flow/"
    rationale = (
        "exact float equality on MaxSum/similarity values is platform-dependent; "
        "use repro.core.numeric.close/isclose with an explicit tolerance"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if not _SCOPED_DIRS & set(module.relparts[:-1]):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_exempt_operand(left) or _is_exempt_operand(right):
                    continue
                if _is_float_typed(left) or _is_float_typed(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield Diagnostic(
                        path=module.display_path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=self.rule_id,
                        message=(
                            f"float {symbol} comparison on a similarity/objective "
                            "expression: use repro.core.numeric.close(a, b) with "
                            "an explicit tolerance (or suppress with "
                            "'# geacc-lint: disable=R2' if exact copy semantics "
                            "are intended)"
                        ),
                    )
