"""R14 -- atomic I/O: service-layer writes go through the durable helpers.

Everything the serving layer persists must survive a kill -9 at any
instruction: the journal fsyncs each record before the command is
acknowledged, and snapshots reach disk only via
:func:`repro.service.snapshot.atomic_write_bytes` (tmp file + fsync +
rename + directory fsync). A bare ``open(path, "w")`` in a service
module -- or a hand-rolled ``os.replace`` that skipped the tmp-file
fsync -- silently reintroduces torn writes into the one layer whose
entire contract is that torn writes cannot happen.

So inside ``src/repro/service/`` this rule flags:

* ``open(...)`` / ``Path.open(...)`` calls whose mode literal can
  write (contains any of ``w``, ``a``, ``x`` or ``+``);
* ``os.replace`` / ``os.rename`` -- renames are only atomic-durable
  after the tmp file *and* the directory are fsync'd, which is the
  helper's job;
* ``Path.write_text`` / ``Path.write_bytes`` -- convenience writers
  with no fsync anywhere.

The modules that *implement* the durable machinery --
``journal.py`` (the :class:`~repro.service.journal.FileSystem` seam and
the write-ahead journal), ``snapshot.py`` (the atomic-write helper
itself) and the sharding ``manifest.py`` (the coordinator's own
write-ahead log, built on the same seam) -- are exempt: the primitives
have to live somewhere. Calls
with a non-literal or absent mode are not flagged (default mode is
``"r"``; a computed mode is a refactor smell but not provably a write),
and a bare ``.replace(...)`` attribute call is ignored because it
collides with ``str.replace``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import dotted_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule

#: Package directory whose modules must use the durable write path.
_SCOPE_DIR = "service"

#: Modules that implement the durable primitives and may touch raw I/O.
_EXEMPT_FILES = frozenset({"journal.py", "snapshot.py", "manifest.py"})

#: Mode-string characters that make an ``open`` call a write.
_WRITE_MODE_CHARS = frozenset("wax+")

#: ``os`` functions that rename in place (atomic only when the helper's
#: fsync discipline surrounds them).
_OS_RENAMES = frozenset({"os.replace", "os.rename"})

#: Path conveniences that write without any fsync.
_PATH_WRITERS = frozenset({"write_text", "write_bytes"})


@register_rule
class AtomicIoRule(Rule):
    """Flag raw file writes in service modules outside the durable core."""

    rule_id = "R14"
    title = "service writes go through the atomic-write helpers"
    rationale = (
        "the serving layer's contract is crash-atomicity; a bare "
        "open(..., 'w') or os.replace outside journal.py/snapshot.py "
        "reintroduces torn writes -- persist through the journal or "
        "repro.service.snapshot.atomic_write_bytes"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if _SCOPE_DIR not in module.relparts[:-1]:
            return
        if module.relparts[-1] in _EXEMPT_FILES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_call(
        self, module: ParsedModule, node: ast.Call
    ) -> Iterator[Diagnostic]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        terminal = dotted.rpartition(".")[2]
        if terminal == "open":
            mode = _literal_mode(node)
            if mode is not None and _WRITE_MODE_CHARS & set(mode):
                yield _diag(
                    module, node,
                    f"{dotted}(..., {mode!r}): raw file write in a service "
                    "module; persist through the journal or "
                    "snapshot.atomic_write_bytes",
                )
        elif dotted in _OS_RENAMES:
            yield _diag(
                module, node,
                f"{dotted}(): rename without the tmp-file + fsync + "
                "directory-fsync discipline; use "
                "snapshot.atomic_write_bytes (or the FileSystem seam)",
            )
        elif terminal in _PATH_WRITERS and "." in dotted:
            yield _diag(
                module, node,
                f"{dotted}(): convenience writer with no fsync; use "
                "snapshot.atomic_write_bytes",
            )


#: Every character a valid ``open`` mode string can contain.
_MODE_ALPHABET = frozenset("rwxab+tU")


def _literal_mode(node: ast.Call) -> str | None:
    """The call's mode argument, if it is a string literal.

    The mode's position differs between ``open(path, "w")`` (second)
    and ``Path.open("w")`` (first), so instead of guessing by position
    this scans the ``mode=`` keyword and the first two positionals for
    a constant string drawn entirely from the mode alphabet -- a test a
    path literal essentially never passes. Returns ``None`` when the
    mode is absent (default ``"r"``) or not a constant string.
    """
    candidates: list[ast.expr] = list(node.args[:2])
    for keyword in node.keywords:
        if keyword.arg == "mode":
            candidates.append(keyword.value)
    for expr in candidates:
        if (
            isinstance(expr, ast.Constant)
            and isinstance(expr.value, str)
            and expr.value
            and set(expr.value) <= _MODE_ALPHABET
        ):
            return expr.value
    return None


def _diag(module: ParsedModule, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        path=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule_id=AtomicIoRule.rule_id,
        message=message,
    )
