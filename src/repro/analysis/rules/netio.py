"""R8 -- network I/O: no server-side sockets outside ``repro.service``.

The arrangement service (:mod:`repro.service`) exists so that every
network listener in the tree obeys one set of invariants: commands are
validated and journaled (fsync'd) *before* they mutate state, admission
control bounds the work a burst can enqueue, and recovery replays the
journal to the exact pre-crash state. A ``socket.socket()`` bound in a
random experiment script -- or a one-off ``http.server`` spun up to
"just expose" a solver -- sits outside all of that: unjournaled
mutations, unbounded queues, state that dies with the process. So this
rule flags the server-side networking modules everywhere except under a
``service/`` package directory:

* importing ``socket`` or ``socketserver`` (any form, any alias);
* importing ``http.server`` (including ``from http import server``);
* calls reaching those modules through a bound alias, e.g.
  ``sock.create_server(...)`` after ``import socket as sock``, or
  ``http.server.ThreadingHTTPServer(...)`` after ``import http``.

Client-side HTTP (``urllib``) is untouched: consuming a service is
fine; *being* one outside the journaled front-end is not.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import dotted_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule

#: Modules whose listeners are corralled into repro.service.
_NET_MODULES = frozenset({"socket", "socketserver", "http.server"})

#: Package directory whose modules own the serving machinery.
_EXEMPT_DIR = "service"


@register_rule
class NetworkIoRule(Rule):
    """Flag server-side socket modules used outside ``repro.service``."""

    rule_id = "R8"
    title = "no server-side sockets outside repro.service"
    rationale = (
        "ad-hoc listeners bypass the serving invariants (validate-then-"
        "journal writes, bounded admission, replayable recovery); expose "
        "functionality through repro.service.http instead"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if _EXEMPT_DIR in module.relparts[:-1]:
            return
        aliases = _module_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                yield from self._check_import(module, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases)

    def _check_import(
        self, module: ParsedModule, node: ast.Import
    ) -> Iterator[Diagnostic]:
        for alias in node.names:
            if alias.name in _NET_MODULES:
                bound = alias.asname or alias.name.partition(".")[0]
                yield _diag(
                    module, node,
                    f"import {alias.name} (bound as {bound!r}): network "
                    "listeners belong to repro.service -- expose this "
                    "through repro.service.http instead",
                )

    def _check_import_from(
        self, module: ParsedModule, node: ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        if node.module in _NET_MODULES:
            for alias in node.names:
                yield _diag(
                    module, node,
                    f"from {node.module} import {alias.name}: server-side "
                    "sockets outside repro.service; route requests through "
                    "the journaled front-end (repro.service.http)",
                )
        elif node.module == "http":
            for alias in node.names:
                if alias.name == "server":
                    yield _diag(
                        module, node,
                        "from http import server: server-side sockets "
                        "outside repro.service; route requests through the "
                        "journaled front-end (repro.service.http)",
                    )

    def _check_call(
        self, module: ParsedModule, node: ast.Call, aliases: set[str]
    ) -> Iterator[Diagnostic]:
        dotted = dotted_name(node.func)
        if dotted is None or "." not in dotted:
            return
        prefix, _, _attr = dotted.rpartition(".")
        if prefix in aliases:
            yield _diag(
                module, node,
                f"{dotted}(): server-side networking outside repro.service; "
                "expose this through repro.service.http instead",
            )


def _module_aliases(tree: ast.Module) -> set[str]:
    """Names bound to socket, socketserver, or http.server.

    Covers ``import socket [as sock]``, ``import http.server`` (both the
    ``http.server`` dotted path and nothing else -- ``http`` alone also
    makes ``http.server`` reachable, so a bare ``import http [as h]``
    contributes ``h.server``), and ``from http import server [as srv]``.
    """
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _NET_MODULES:
                    if alias.asname is not None:
                        aliases.add(alias.asname)
                    else:
                        aliases.add(alias.name)
                elif alias.name == "http" or alias.name.startswith("http."):
                    bound = alias.asname or "http"
                    aliases.add(bound + ".server")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "http":
                for alias in node.names:
                    if alias.name == "server":
                        aliases.add(alias.asname or alias.name)
    return aliases


def _diag(module: ParsedModule, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        path=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule_id=NetworkIoRule.rule_id,
        message=message,
    )
