"""Built-in ``geacc-lint`` rules.

Importing this package registers every rule class in
:data:`repro.analysis.registry.RULES` (one module per rule; add new
rules by dropping a module here and importing it below).
"""

from repro.analysis.rules.atomicio import AtomicIoRule
from repro.analysis.rules.checkpoint import CheckpointInLoopRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.floats import FloatComparisonRule
from repro.analysis.rules.fsync import FsyncBeforeAckRule
from repro.analysis.rules.hygiene import ApiHygieneRule
from repro.analysis.rules.journal import JournalBeforeMutateRule
from repro.analysis.rules.leaks import LeaseLeakRule
from repro.analysis.rules.netio import NetworkIoRule
from repro.analysis.rules.ordering import OrderingSafetyRule
from repro.analysis.rules.parallelism import ParallelismRule
from repro.analysis.rules.shardaccess import ShardAccessRule
from repro.analysis.rules.solver_registry import SolverRegistryRule
from repro.analysis.rules.suppression import SuppressionHygieneRule
from repro.analysis.rules.timeapi import TimeApiRule
from repro.analysis.rules.vectorloops import VectorLoopRule

__all__ = [
    "DeterminismRule",
    "FloatComparisonRule",
    "SolverRegistryRule",
    "OrderingSafetyRule",
    "ApiHygieneRule",
    "TimeApiRule",
    "ParallelismRule",
    "NetworkIoRule",
    "JournalBeforeMutateRule",
    "LeaseLeakRule",
    "CheckpointInLoopRule",
    "FsyncBeforeAckRule",
    "SuppressionHygieneRule",
    "AtomicIoRule",
    "VectorLoopRule",
    "ShardAccessRule",
]
