"""R1 -- determinism: no hidden global RNG state anywhere under ``src/repro``.

Every reported number in the reproduction must be a pure function of
the instance and an explicit seed.  The stdlib ``random`` module and
NumPy's legacy ``np.random.*`` global API both draw from interpreter
state that any import or unrelated call can perturb, which is exactly
how tie-breaks silently drift between runs (cf. the objective-value
discrepancies catalogued for assignment-with-conflicts solvers).  The
only sanctioned source of randomness is an explicitly seeded
``numpy.random.Generator`` threaded through call signatures.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import dotted_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule

#: Attributes of ``numpy.random`` that construct explicit generators
#: (allowed) rather than touching the global state (flagged).
_GENERATOR_API = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
     "PCG64DXSM", "MT19937", "Philox", "SFC64"}
)


def _numpy_random_attr(dotted: str) -> str | None:
    """For ``np.random.rand`` / ``numpy.random.seed`` return the attr name."""
    parts = dotted.split(".")
    if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
        return parts[2]
    return None


@register_rule
class DeterminismRule(Rule):
    """Flag unseeded / global-state randomness."""

    rule_id = "R1"
    title = "no unseeded random.* / np.random.* calls; thread an explicit rng/seed"
    rationale = (
        "solver output must be a pure function of (instance, seed); global RNG "
        "state makes paper numbers irreproducible"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        # Resolve stdlib-random aliases up front so call checks don't
        # depend on walk order relative to the import statements.
        stdlib_random_aliases = _stdlib_random_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, stdlib_random_aliases)

    def _check_import_from(
        self, module: ParsedModule, node: ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        if node.module == "random":
            names = ", ".join(alias.name for alias in node.names)
            yield _diag(
                module, node,
                f"import of stdlib random ({names}): stdlib random draws from "
                "hidden global state; thread an explicit numpy Generator instead",
            )
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _GENERATOR_API:
                    yield _diag(
                        module, node,
                        f"import of legacy numpy.random.{alias.name}: use the "
                        "explicit Generator API (numpy.random.default_rng(seed))",
                    )

    def _check_call(
        self, module: ParsedModule, node: ast.Call, stdlib_aliases: set[str]
    ) -> Iterator[Diagnostic]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        root = dotted.split(".", 1)[0]
        if root in stdlib_aliases and "." in dotted:
            yield _diag(
                module, node,
                f"call to stdlib {dotted}(): draws from hidden global RNG state; "
                "thread an explicit numpy.random.Generator / seed",
            )
            return
        attr = _numpy_random_attr(dotted)
        if attr is None:
            return
        if attr == "default_rng":
            if not node.args and not any(k.arg == "seed" for k in node.keywords):
                yield _diag(
                    module, node,
                    "np.random.default_rng() without a seed: pass the run's "
                    "explicit seed so results are reproducible",
                )
        elif attr not in _GENERATOR_API:
            yield _diag(
                module, node,
                f"legacy global-state call {dotted}(): use an explicitly seeded "
                "numpy.random.default_rng(seed) Generator",
            )


def _stdlib_random_aliases(tree: ast.Module) -> set[str]:
    """Names bound to the stdlib random module (``import random as rnd``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases


def _diag(module: ParsedModule, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        path=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule_id=DeterminismRule.rule_id,
        message=message,
    )
