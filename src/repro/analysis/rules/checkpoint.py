"""R11 -- checkpoint-in-hot-loop: the anytime guarantee is cooperative.

Budgets (:mod:`repro.robustness.budget`) do nothing by themselves: a
solver is interruptible only because its hot loops call
``budget.checkpoint()``, which raises once the deadline or node budget
is gone.  A ``while`` loop that spins without checkpointing turns
"feasible-timeout with best-so-far" into "hangs past the deadline" --
and the sweep's wall-clock accounting (and the paper's anytime claims)
with it.

The rule's scope is deliberately narrow and syntactic:

* only modules under an ``algorithms/`` package directory (the
  registered solvers);
* only functions that are *budget-aware* -- they take a ``budget``
  parameter or touch ``self.budget`` / ``self._budget``.  Pure helpers
  that never see a budget (e.g. the greedy refill scans, which are
  bounded by cursor exhaustion) are their caller's responsibility;
* only ``while`` loops: a ``for`` loop is bounded by its iterable,
  while every ``while`` is unbounded until proven otherwise -- and the
  prover here is a ``*.checkpoint()`` call (on a budget-ish receiver)
  somewhere in the loop body, nested loops included, nested function
  definitions excluded.

This one is containment, not dataflow: "the loop body contains a
checkpoint" is the contract ``docs/robustness.md`` states, and a
fixpoint over paths would only blur it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.cfg import iter_expressions
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule
from repro.analysis.typestate import CallPattern

#: Package directory containing the registered solvers.
_SCOPE_DIR = "algorithms"

#: Attributes whose use marks a method as budget-aware.
_BUDGET_ATTRS = frozenset({"budget", "_budget"})

_CHECKPOINT = CallPattern("checkpoint", frozenset({"budget"}))


def _is_budget_aware(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = func.args
    every = [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        args.vararg,
        args.kwarg,
    ]
    if any(arg is not None and arg.arg == "budget" for arg in every):
        return True
    for node in iter_expressions(func):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _BUDGET_ATTRS
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def _loop_checkpoints(loop: ast.While) -> bool:
    for stmt in loop.body:
        for node in iter_expressions(stmt):
            if isinstance(node, ast.Call) and _CHECKPOINT.matches(node):
                return True
    return False


def _own_while_loops(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.While]:
    """``while`` loops belonging to ``func`` itself (not nested defs)."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.While):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class CheckpointInLoopRule(Rule):
    """Flag unbounded solver loops that never call budget.checkpoint()."""

    rule_id = "R11"
    title = "budget-aware solver while-loops must checkpoint()"
    rationale = (
        "budgets are cooperative: a while loop without budget.checkpoint() "
        "cannot be interrupted, so the anytime contract (best-so-far at "
        "the deadline) silently becomes a hang past the deadline"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if _SCOPE_DIR not in module.relparts[:-1]:
            return
        for func in _functions(module.tree):
            if not _is_budget_aware(func):
                continue
            for loop in _own_while_loops(func):
                if not _loop_checkpoints(loop):
                    yield Diagnostic(
                        path=module.display_path,
                        line=loop.lineno,
                        col=loop.col_offset,
                        rule_id=self.rule_id,
                        message=(
                            f"while-loop in budget-aware {func.name}() never "
                            "calls budget.checkpoint(); an exhausted budget "
                            "cannot interrupt it (call checkpoint() once per "
                            "iteration and return best-so-far on "
                            "BudgetExceededError)"
                        ),
                    )


def _functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
