"""R4 -- ordering safety: set/dict-values iteration must not feed tie-breaks.

Greedy-GEACC and Prune-GEACC resolve equal-similarity candidates by
*whichever comes first*; if the candidate stream iterates a ``set`` (or
``dict.values()``), "first" depends on hash seeding and insertion
history, and two runs of the same instance can return different
arrangements with the same MaxSum -- or, after a pruning-bound
interaction, different MaxSums.  The paper's numbers are only
reproducible because every tie-break consumes an index-ordered
sequence.

Two patterns are flagged:

* a ``for`` loop (or comprehension) over a set-like expression inside a
  function that pushes onto a heap (``heapq.heappush`` & friends) --
  heap order then inherits set order for equal keys;
* ``sorted``/``min``/``max``/``heapq.nlargest``/``nsmallest`` **with a
  key function** applied directly to a set-like iterable -- with a key,
  distinct elements can compare equal and the winner inherits set
  order.  (Without a key, a total order over distinct elements makes
  the result well-defined, so that case stays silent.)
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import is_set_like, iter_function_defs, terminal_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule

_HEAP_PUSHERS = frozenset({"heappush", "heappushpop", "heapreplace"})
_TIE_BREAKERS = frozenset({"sorted", "min", "max", "nlargest", "nsmallest"})


def _contains_heap_push(node: ast.AST) -> bool:
    return any(
        isinstance(inner, ast.Call)
        and terminal_name(inner.func) in _HEAP_PUSHERS
        for inner in ast.walk(node)
    )


def _set_like_iters(node: ast.AST) -> Iterator[ast.expr]:
    """Set-like iterables consumed by loops/comprehensions under ``node``."""
    for inner in ast.walk(node):
        if isinstance(inner, (ast.For, ast.AsyncFor)) and is_set_like(inner.iter):
            yield inner.iter
        elif isinstance(inner, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in inner.generators:
                if is_set_like(generator.iter):
                    yield generator.iter


@register_rule
class OrderingSafetyRule(Rule):
    """Flag set-order-dependent tie-break and heap-push sites."""

    rule_id = "R4"
    title = "no set/dict.values() iteration feeding heap pushes or keyed tie-breaks"
    rationale = (
        "tie-breaks must consume index-ordered sequences; set iteration order "
        "varies with hashing and insertion history, so equal-similarity "
        "candidates would be arranged differently across runs"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        for function in iter_function_defs(module.tree):
            if not _contains_heap_push(function):
                continue
            for iterable in _set_like_iters(function):
                yield self._diag(
                    module, iterable,
                    "iteration over a set-like collection feeds heap pushes in "
                    f"{function.name}(); heap tie-order inherits the set's hash "
                    "order -- iterate a sorted/index-ordered sequence instead",
                )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_tie_breaker(module, node)

    def _check_tie_breaker(
        self, module: ParsedModule, node: ast.Call
    ) -> Iterator[Diagnostic]:
        name = terminal_name(node.func)
        if name not in _TIE_BREAKERS:
            return
        if not any(keyword.arg == "key" for keyword in node.keywords):
            return
        for arg in node.args:
            if is_set_like(arg):
                yield self._diag(
                    module, arg,
                    f"{name}(..., key=...) over a set-like collection: with a "
                    "key function, tied elements resolve by set iteration "
                    "order -- sort an index-ordered sequence instead",
                )

    def _diag(self, module: ParsedModule, node: ast.expr, message: str) -> Diagnostic:
        return Diagnostic(
            path=module.display_path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=message,
        )
