"""R12 -- fsync-before-ack: nothing is acknowledged before it is durable.

The journal's durability contract (``docs/service.md``) is that a
client acknowledgement *means* the command is on disk: written,
flushed, **fsync'd**.  ``write()`` alone hands bytes to the kernel page
cache and ``flush()`` only empties the userspace buffer -- after either
one, a power cut still loses the record while the client holds a
success response.  Replay then reconstructs a store missing a command
the client believes accepted: the exact divergence the write-ahead
design exists to rule out.

The rule is a may-analysis over each function's CFG in
``repro.service``: a ``*handle*.write(...)`` raises an "unflushed"
hazard flag, ``os.fsync(...)`` clears it, and on **no** path may a
success response (``_reply``/``send_response``) -- or a plain
``return``, which is the in-process acknowledgement -- execute while
the flag is (even possibly) set.  Exceptional exits are exempt: an
exception *is* the failure signal, no client mistakes it for an ack.

``flush()`` deliberately does not clear the flag.  HTTP response
machinery (``wfile.write``) does not set it: the hazard is journal
bytes, not response bytes.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.cfg import function_cfgs
from repro.analysis.dataflow import MAY
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule
from repro.analysis.typestate import CallPattern, FlagProtocol, check_flag_protocol

#: Package directory carrying the durability contract.
_SCOPE_DIR = "service"

_PROTOCOL = FlagProtocol(
    flag="unflushed journal write",
    mode=MAY,
    sets=(CallPattern("write", frozenset({"handle"})),),
    clears=(CallPattern("fsync"),),
    requires=(CallPattern("_reply"), CallPattern("send_response")),
    check_returns=True,
)


@register_rule
class FsyncBeforeAckRule(Rule):
    """Flag acknowledgements reachable with an unfsync'd journal write."""

    rule_id = "R12"
    title = "fsync the journal before acknowledging success"
    rationale = (
        "an acknowledgement promises durability; write()/flush() leave the "
        "record in volatile buffers, so a crash after the ack loses a "
        "command the client was told succeeded -- os.fsync before any "
        "success path"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if _SCOPE_DIR not in module.relparts[:-1]:
            return
        for cfg in function_cfgs(module.tree):
            for violation in check_flag_protocol(cfg, _PROTOCOL):
                if violation.kind == "return":
                    message = (
                        "function can return while a journal write is "
                        "unflushed (write -> flush -> os.fsync before "
                        "returning; returning is the ack)"
                    )
                else:
                    message = (
                        f"{violation.detail}(): success response reachable "
                        "while a journal write is unflushed (os.fsync the "
                        "journal handle before acknowledging)"
                    )
                yield Diagnostic(
                    path=module.display_path,
                    line=violation.line,
                    col=violation.col,
                    rule_id=self.rule_id,
                    message=message,
                )
