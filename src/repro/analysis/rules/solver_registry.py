"""R3 -- solver-registry completeness (a cross-file, project-level rule).

Every concrete :class:`~repro.core.algorithms.base.Solver` subclass in
``core/algorithms/`` must be

1. **named** -- decorated with ``@register_solver("<name>")``, with no
   duplicate names across the package,
2. **reachable** -- its defining module imported from the package
   ``__init__`` (otherwise the decorator never runs and the CLI's
   ``--algorithms`` choices silently lose the solver), and
3. **exported** -- listed in the package ``__init__``'s ``__all__``.

A solver that drops out of the registry doesn't fail loudly: the
experiment harness just runs fewer methods and the reproduction's
comparison tables silently thin out.  This rule turns that drift into a
lint failure.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.astutils import terminal_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule, Project
from repro.analysis.registry import Rule, register_rule

_BASE_RELPATH_SUFFIX = "core/algorithms/base.py"
_ROOT_CLASS = "Solver"


@dataclass
class _ClassInfo:
    module: ParsedModule
    node: ast.ClassDef
    base_names: list[str]
    registered_name: str | None
    is_abstract: bool


def _registered_name(node: ast.ClassDef) -> str | None:
    """The ``"name"`` argument of a ``@register_solver("name")`` decorator."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if terminal_name(decorator.func) != "register_solver":
            continue
        if decorator.args and isinstance(decorator.args[0], ast.Constant):
            value = decorator.args[0].value
            if isinstance(value, str):
                return value
        return ""  # registered, but with a non-literal / missing name
    return None


def _is_abstract(node: ast.ClassDef) -> bool:
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                if terminal_name(decorator) == "abstractmethod":
                    return True
    return False


def _collect_classes(modules: list[ParsedModule]) -> dict[str, _ClassInfo]:
    classes: dict[str, _ClassInfo] = {}
    for module in modules:
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [
                name
                for name in (terminal_name(base) for base in node.bases)
                if name is not None
            ]
            classes[node.name] = _ClassInfo(
                module=module,
                node=node,
                base_names=base_names,
                registered_name=_registered_name(node),
                is_abstract=_is_abstract(node),
            )
    return classes


def _solver_subclasses(classes: dict[str, _ClassInfo]) -> set[str]:
    """Transitive subclasses of ``Solver`` among the collected classes."""
    subclasses: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, info in classes.items():
            if name in subclasses:
                continue
            if any(
                base == _ROOT_CLASS or base in subclasses
                for base in info.base_names
            ):
                subclasses.add(name)
                changed = True
    return subclasses


def _init_exports(init_module: ParsedModule | None) -> tuple[set[str], set[str]]:
    """(names imported in __init__, names listed in its __all__)."""
    imported: set[str] = set()
    dunder_all: set[str] = set()
    if init_module is None:
        return imported, dunder_all
    for node in init_module.tree.body:
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                imported.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        dunder_all.add(element.value)
    return imported, dunder_all


@register_rule
class SolverRegistryRule(Rule):
    """Cross-file check that the solver registry covers every solver."""

    rule_id = "R3"
    title = "every concrete Solver subclass is registered, imported, and exported"
    rationale = (
        "an unregistered/unimported solver silently disappears from the CLI and "
        "experiment harness, thinning the paper's comparison tables"
    )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        base_module = next(
            (m for m in project.modules if m.relpath.endswith(_BASE_RELPATH_SUFFIX)),
            None,
        )
        if base_module is None:
            return  # not linting a tree that contains the solver package
        package_dir = base_module.relpath.rsplit("/", 1)[0]
        package_modules = [
            m
            for m in project.modules
            if m.relpath.rsplit("/", 1)[0] == package_dir
        ]
        init_module = project.module_at(f"{package_dir}/__init__.py")
        imported, dunder_all = _init_exports(init_module)

        classes = _collect_classes(
            [m for m in package_modules if m is not base_module]
        )
        solver_names = _solver_subclasses(classes)
        seen_registry_names: dict[str, str] = {}
        for class_name in sorted(solver_names):
            info = classes[class_name]
            if info.is_abstract:
                continue
            yield from self._check_class(
                class_name, info, imported, dunder_all, seen_registry_names
            )

    def _check_class(
        self,
        class_name: str,
        info: _ClassInfo,
        imported: set[str],
        dunder_all: set[str],
        seen_registry_names: dict[str, str],
    ) -> Iterator[Diagnostic]:
        if info.registered_name is None:
            yield self._diag(
                info,
                f"solver class {class_name} lacks @register_solver(...): it is "
                "unreachable from get_solver()/the CLI dispatch",
            )
        elif info.registered_name == "":
            yield self._diag(
                info,
                f"solver class {class_name} registers without a string-literal "
                "name; the registry key must be auditable statically",
            )
        else:
            previous = seen_registry_names.get(info.registered_name)
            if previous is not None:
                yield self._diag(
                    info,
                    f"solver name {info.registered_name!r} already registered by "
                    f"{previous}; duplicate registration raises at import time",
                )
            seen_registry_names[info.registered_name] = class_name
        if class_name not in imported:
            yield self._diag(
                info,
                f"solver class {class_name} is not imported in the package "
                "__init__, so its @register_solver decorator never runs",
            )
        if class_name not in dunder_all:
            yield self._diag(
                info,
                f"solver class {class_name} is missing from __all__ in the "
                "package __init__",
            )

    def _diag(self, info: _ClassInfo, message: str) -> Diagnostic:
        return Diagnostic(
            path=info.module.display_path,
            line=info.node.lineno,
            col=info.node.col_offset,
            rule_id=self.rule_id,
            message=message,
        )
