"""R16 -- shard isolation: no cross-shard store access outside sharding.

The shard coordinator's whole correctness argument rests on one
ownership rule: a shard's :class:`~repro.service.store.ArrangementStore`,
journal and engine are mutated only by that shard's manager, and the
only component allowed to look across shards is the coordinator itself
(which serialises every cross-shard mutation through the manifest).
Code elsewhere that reaches *through* the fleet --
``coordinator.managers[i].store`` or ``fleet.shards[0].journal`` --
bypasses both the per-shard locks and the manifest write-ahead step, so
a mutation issued that way is invisible to recovery and can interleave
with a rebalance mid-migration.

Outside a ``sharding/`` package directory this rule flags:

* attribute reach-ins ``<x>.shards[...].store`` /
  ``<x>.managers[...].journal`` (and ``.engine`` / ``.service``) -- any
  subscript of a name or attribute called ``shards`` or ``managers``
  whose result is then dereferenced into shard internals;
* imports of the sharding *implementation* submodules
  (``repro.service.sharding.manager`` / ``.manifest``), which would hand
  out the raw per-shard handles the package facade deliberately wraps.

The package facade stays legal everywhere: ``from
repro.service.sharding import ShardCoordinator, ShardManager`` only
exposes the coordinator command surface and the manager's public
classmethods (``journal_path`` et al.), which is exactly the API the
CLI and load generator are meant to use.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import dotted_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule

#: Fleet collections whose elements are per-shard handles.
_FLEET_NAMES = frozenset({"shards", "managers"})

#: Per-shard internals that only the sharding package may dereference.
_SHARD_INTERNALS = frozenset({"store", "journal", "engine", "service"})

#: Implementation submodules the facade deliberately does not re-export
#: wholesale; importing them elsewhere hands out raw shard internals.
_PRIVATE_MODULES = frozenset(
    {
        "repro.service.sharding.manager",
        "repro.service.sharding.manifest",
    }
)

#: Package directory whose modules own the shard machinery.
_EXEMPT_DIR = "sharding"


@register_rule
class ShardAccessRule(Rule):
    """Flag cross-shard internal access outside the sharding package."""

    rule_id = "R16"
    title = "no cross-shard store access outside repro.service.sharding"
    rationale = (
        "reaching through .shards[...]/.managers[...] into a shard's "
        "store/journal/engine bypasses the per-shard locks and the "
        "coordinator's manifest write-ahead step; route mutations "
        "through the ShardCoordinator command surface"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if _EXEMPT_DIR in module.relparts[:-1]:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                yield from self._check_reach_in(module, node)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(module, node)

    def _check_reach_in(
        self, module: ParsedModule, node: ast.Attribute
    ) -> Iterator[Diagnostic]:
        if node.attr not in _SHARD_INTERNALS:
            return
        if not isinstance(node.value, ast.Subscript):
            return
        fleet = _terminal_name(node.value.value)
        if fleet in _FLEET_NAMES:
            yield _diag(
                module, node,
                f"{fleet}[...].{node.attr}: cross-shard reach-in past the "
                "coordinator; shard internals belong to "
                "repro.service.sharding -- use the ShardCoordinator "
                "command surface",
            )

    def _check_import(
        self, module: ParsedModule, node: ast.Import | ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        if isinstance(node, ast.ImportFrom):
            targets = [node.module] if node.module else []
            label = f"from {node.module} import ..."
        else:
            targets = [alias.name for alias in node.names]
            label = ""
        for target in targets:
            if target in _PRIVATE_MODULES:
                shown = label or f"import {target}"
                yield _diag(
                    module, node,
                    f"{shown}: sharding implementation submodule imported "
                    "outside the sharding package; import the "
                    "repro.service.sharding facade instead",
                )


def _terminal_name(expr: ast.expr) -> str | None:
    """The last identifier of a name/attribute chain, else ``None``.

    Catches both ``managers[0]`` (a local binding) and
    ``coordinator.managers[0]`` (a fleet attribute); anything more
    exotic -- a call result, a comprehension -- is not provably the
    fleet, so it is left alone.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    dotted = dotted_name(expr)
    if dotted is None:
        return None
    return dotted.rpartition(".")[2]


def _diag(module: ParsedModule, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        path=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule_id=ShardAccessRule.rule_id,
        message=message,
    )
