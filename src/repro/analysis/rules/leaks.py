"""R10 -- lease/handle leak: shm obligations must die on every path.

The parallel sweep's shared-memory lifecycle (``docs/performance.md``)
is a three-party contract: the parent creates and ``unlink``\\ s each
segment, workers ``close()`` their per-cell mappings, and nobody else
touches the lifecycle.  POSIX shm segments survive process exit -- a
mapping that misses its ``close()`` pins pages until the process dies,
and a created segment that misses ``unlink()`` leaks ``/dev/shm``
space until reboot.  The leak never shows up on the happy path; it
shows up when the statement *between* acquire and release raises, which
is exactly what a per-node AST rule cannot see.

So this rule runs the resource typestate
(:mod:`repro.analysis.typestate`) over each function's CFG in
``repro.parallel``: every acquisition -- ``handle.attach()``,
``shared_memory.SharedMemory(...)``, ``SharedInstanceArchive.
from_instance(...)`` -- opens an obligation that must, on **every**
path to the function exit (exceptional edges included), either reach a
release method (``close``/``unlink``/``release``/``destroy``/
``terminate``) on some alias, or *escape*: be returned, passed to a
call, or stored into an object/container, after which the receiver
owns the lifecycle.  ``with ... as x:`` acquisitions are exempt --
``__exit__`` is the release.

The analysis understands the ``if lease is not None: lease.close()``
guard (branch refinement drops the handle on the ``None`` arm) and
try/finally release paths, so the executor's idioms lint clean as
written.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.cfg import function_cfgs
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule
from repro.analysis.typestate import (
    CallPattern,
    ResourceProtocol,
    check_resource_protocol,
)

#: Package directory owning the shm lifecycle.
_SCOPE_DIR = "parallel"

_PROTOCOL = ResourceProtocol(
    acquires=(
        CallPattern("attach", frozenset({"handle"})),
        CallPattern("SharedMemory", frozenset({"shared_memory"})),
        CallPattern("from_instance", frozenset({"archive"})),
    ),
    release_methods=frozenset({"close", "unlink", "release", "destroy", "terminate"}),
    description="shared-memory lease/handle",
)


@register_rule
class LeaseLeakRule(Rule):
    """Flag shm leases/handles that can exit a function unreleased."""

    rule_id = "R10"
    title = "no leaked shm leases: close/release on every path"
    rationale = (
        "POSIX shm outlives the statement that mapped it; a path (normal "
        "or exceptional) from acquire to function exit without close()/"
        "release()/hand-off pins segments for the worker's lifetime and "
        "leaks /dev/shm space across the sweep"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if _SCOPE_DIR not in module.relparts[:-1]:
            return
        for cfg in function_cfgs(module.tree):
            for violation in check_resource_protocol(cfg, _PROTOCOL):
                yield Diagnostic(
                    path=module.display_path,
                    line=violation.line,
                    col=violation.col,
                    rule_id=self.rule_id,
                    message=(
                        f"{violation.detail} acquired here can reach the "
                        "function exit unreleased on at least one path "
                        "(exceptional paths count); close()/release() it in "
                        "a finally, or hand it off to an owner"
                    ),
                )
