"""R5 -- API hygiene: mutable defaults, bare excepts, untyped core API.

Three checks share one rule ID (they are all "the public surface must
be honest about its contract"):

* **mutable default arguments** (anywhere) -- a ``def f(x=[])`` default
  is shared across calls; a solver keeping scratch state there would
  leak one instance's partial arrangement into the next solve;
* **bare except** (anywhere) -- swallowing ``KeyboardInterrupt`` and
  ``SystemExit`` turns an aborted benchmark into a half-written result
  file; catch a concrete exception type;
* **missing annotations on public functions under ``core/``** -- the
  strict-mypy surface of the reproduction; an unannotated public
  function silently opts its callers out of type checking.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule
from repro.analysis.registry import Rule, register_rule

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)
_ANNOTATION_SCOPE_DIR = "core"

_FunctionDef = ast.FunctionDef | ast.AsyncFunctionDef


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
                         ast.DictComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _iter_defaults(function: _FunctionDef) -> Iterator[ast.expr]:
    yield from function.args.defaults
    for default in function.args.kw_defaults:
        if default is not None:
            yield default


def _top_level_functions(
    tree: ast.Module,
) -> Iterator[tuple[_FunctionDef, bool]]:
    """(function, is_method) for module-level defs and direct class members.

    Nested functions are intentionally excluded: they are implementation
    detail, not API surface.
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, False
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, True


def _is_staticmethod(function: _FunctionDef) -> bool:
    return any(
        isinstance(decorator, ast.Name) and decorator.id == "staticmethod"
        for decorator in function.decorator_list
    )


def _unannotated_params(function: _FunctionDef, is_method: bool) -> list[str]:
    args = function.args
    params = [*args.posonlyargs, *args.args]
    if is_method and not _is_staticmethod(function) and params:
        params = params[1:]  # self / cls carry an implicit type
    params += args.kwonlyargs
    for variadic in (args.vararg, args.kwarg):
        if variadic is not None:
            params.append(variadic)
    return [param.arg for param in params if param.annotation is None]


@register_rule
class ApiHygieneRule(Rule):
    """Mutable defaults, bare excepts, and untyped public core functions."""

    rule_id = "R5"
    title = "no mutable default args / bare excepts; public core API fully annotated"
    rationale = (
        "shared mutable defaults leak state across solves, bare excepts swallow "
        "aborts, and unannotated public functions opt callers out of strict mypy"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in _iter_defaults(node):
                    if _is_mutable_default(default):
                        yield self._diag(
                            module, default,
                            f"mutable default argument in {node.name}(): the "
                            "default object is shared across calls; default to "
                            "None and build inside the function",
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self._diag(
                    module, node,
                    "bare except: also catches KeyboardInterrupt/SystemExit; "
                    "name a concrete exception type",
                )
        if _ANNOTATION_SCOPE_DIR in module.relparts[:-1]:
            yield from self._check_annotations(module)

    def _check_annotations(self, module: ParsedModule) -> Iterator[Diagnostic]:
        for function, is_method in _top_level_functions(module.tree):
            if function.name.startswith("_") and not (
                function.name.startswith("__") and function.name.endswith("__")
            ):
                continue  # private helpers are not API surface
            missing = _unannotated_params(function, is_method)
            if missing:
                listed = ", ".join(missing)
                yield self._diag(
                    module, function,
                    f"public function {function.name}() has unannotated "
                    f"parameter(s): {listed}",
                )
            if function.returns is None:
                yield self._diag(
                    module, function,
                    f"public function {function.name}() lacks a return "
                    "annotation (use '-> None' for procedures)",
                )

    def _diag(self, module: ParsedModule, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )
