"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast

#: Functions whose call result is set-like (iteration order hazard).
SET_CONSTRUCTORS = frozenset({"set", "frozenset"})


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains (or a bare name) as a string.

    Returns None for anything that is not a pure Name/Attribute chain,
    e.g. ``f().attr`` or ``d[k].attr``.
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.expr) -> str | None:
    """The last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_target(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, or None if not a plain chain."""
    return dotted_name(node.func)


def is_set_like(node: ast.expr) -> bool:
    """True for expressions whose iteration order is a hazard.

    Covers set displays/comprehensions, ``set(...)``/``frozenset(...)``
    calls, and ``<expr>.values()`` (dict values carry insertion order,
    which silently depends on build history -- the paper's tie-breaks
    must not).
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        if isinstance(node.func, ast.Name) and name in SET_CONSTRUCTORS:
            return True
        if isinstance(node.func, ast.Attribute) and name == "values":
            return True
    return False


def iter_function_defs(tree: ast.AST) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """All function definitions anywhere in ``tree``, outermost first."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
