"""A small worklist fixpoint engine over :class:`repro.analysis.cfg.CFG`.

The engine is parameterised by an :class:`Analysis`: direction
(forward/backward), join flavour (may = union over any path, must =
intersection over all paths), a per-statement transfer function, and an
optional edge-refinement hook.  Facts are opaque to the engine except
for one convention: ``None`` is the *unreachable* bottom -- blocks no
path reaches keep ``None`` and their statements are never transferred,
so rules do not report on dead code.

Exceptional edges get special treatment.  The CFG builder isolates each
possibly-raising statement in its own block, so the fact flowing along
an ``exc`` edge is the source block's **entry** fact: the exception
fired mid-statement, before any binding the statement would have
performed.  That is exactly what resource-leak analysis needs -- in ::

    segment = shared_memory.SharedMemory(create=True, size=n)

a raise inside the constructor means the caller never held the segment,
while a raise in the *next* statement means it did.  Normal edges carry
the source block's exit fact as usual.

Typical use (see :mod:`repro.analysis.typestate` for real ones)::

    class Reaching(Analysis):
        direction = FORWARD
        def initial(self, cfg):
            return frozenset()
        def join(self, left, right):
            return left | right
        def transfer_stmt(self, stmt, fact):
            ...

    solution = solve(cfg, Reaching())
    for block, stmt, before, after in solution.stmt_facts():
        ...
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.analysis.cfg import CFG, EXC, Block, Edge

#: Analysis directions.
FORWARD = "forward"
BACKWARD = "backward"

#: Join flavours (documentation-level; ``Analysis.join`` implements one).
MAY = "may"
MUST = "must"

FactT = TypeVar("FactT")


class Analysis(Generic[FactT]):
    """One dataflow problem: direction, lattice, transfer.

    Subclasses override :meth:`initial`, :meth:`join` and
    :meth:`transfer_stmt` (or :meth:`transfer_block` for block-at-a-time
    transfer).  ``None`` is reserved for "unreachable" and never reaches
    the hooks.
    """

    #: :data:`FORWARD` or :data:`BACKWARD`.
    direction: str = FORWARD
    #: :data:`MAY` or :data:`MUST`; informational (``join`` is the law).
    mode: str = MAY

    def initial(self, cfg: CFG) -> FactT:
        """The boundary fact (function entry, or exit when backward)."""
        raise NotImplementedError

    def join(self, left: FactT, right: FactT) -> FactT:
        """Combine facts where paths meet (union for may, intersection
        for must)."""
        raise NotImplementedError

    def transfer_stmt(self, stmt: ast.stmt, fact: FactT) -> FactT:
        """Fact after executing one simple statement (identity default)."""
        return fact

    def transfer_block(self, block: Block, fact: FactT) -> FactT:
        """Fact after a whole block; default folds :meth:`transfer_stmt`.

        Backward analyses fold statements in reverse source order.
        """
        stmts = block.stmts if self.direction == FORWARD else block.stmts[::-1]
        for stmt in stmts:
            fact = self.transfer_stmt(stmt, fact)
        return fact

    def refine(self, edge: Edge, fact: FactT) -> FactT:
        """Adjust the fact flowing along a refined branch edge.

        Called (forward direction only) for edges carrying a
        ``(name, "none"|"notnone")`` tag; the default keeps the fact.
        """
        return fact

    def transfer_exc(self, block: Block, fact: FactT) -> FactT:
        """The fact flowing along an ``exc`` edge out of ``block``.

        ``fact`` is the block's *entry* fact (the raise happened
        mid-statement).  The default propagates it unchanged; analyses
        may apply the non-binding parts of the statement -- e.g.
        resource tracking counts ``lease.close()`` as released even on
        its own exceptional edge, else every release inside a
        ``finally`` would look like a leak path.
        """
        return fact


@dataclass
class Solution(Generic[FactT]):
    """The fixpoint: per-block entry/exit facts plus statement walking.

    ``None`` entries mark unreachable blocks.
    """

    cfg: CFG
    analysis: Analysis[FactT]
    in_facts: dict[int, FactT | None] = field(default_factory=dict)
    out_facts: dict[int, FactT | None] = field(default_factory=dict)

    def stmt_facts(self) -> Iterator[tuple[Block, ast.stmt, FactT, FactT]]:
        """Yield ``(block, stmt, fact_before, fact_after)`` per statement.

        Statements in unreachable blocks are skipped; iteration follows
        the analysis direction so diagnostics come out in execution
        order for forward problems.
        """
        forward = self.analysis.direction == FORWARD
        for idx in self.cfg.rpo():
            block = self.cfg.blocks[idx]
            fact = self.in_facts[idx] if forward else self.out_facts[idx]
            if fact is None:
                continue
            stmts = block.stmts if forward else block.stmts[::-1]
            for stmt in stmts:
                after = self.analysis.transfer_stmt(stmt, fact)
                yield block, stmt, fact, after
                fact = after


def _edge_value(
    cfg: CFG,
    analysis: Analysis[FactT],
    edge: Edge,
    in_facts: dict[int, FactT | None],
    out_facts: dict[int, FactT | None],
) -> FactT | None:
    """The fact flowing along ``edge`` in a forward analysis."""
    if edge.kind == EXC:
        value = in_facts[edge.src]
        if value is not None:
            value = analysis.transfer_exc(cfg.blocks[edge.src], value)
    else:
        value = out_facts[edge.src]
    if value is not None and edge.refine is not None:
        value = analysis.refine(edge, value)
    return value


def _join_all(analysis: Analysis[FactT], values: list[FactT]) -> FactT | None:
    if not values:
        return None
    result = values[0]
    for value in values[1:]:
        result = analysis.join(result, value)
    return result


def solve(cfg: CFG, analysis: Analysis[FactT]) -> Solution[FactT]:
    """Run ``analysis`` to fixpoint over ``cfg``."""
    if analysis.direction == FORWARD:
        return _solve_forward(cfg, analysis)
    return _solve_backward(cfg, analysis)


def _solve_forward(cfg: CFG, analysis: Analysis[FactT]) -> Solution[FactT]:
    solution: Solution[FactT] = Solution(cfg, analysis)
    order = cfg.rpo()
    for idx in order:
        solution.in_facts[idx] = None
        solution.out_facts[idx] = None
    solution.in_facts[cfg.entry] = analysis.initial(cfg)
    solution.out_facts[cfg.entry] = analysis.transfer_block(
        cfg.blocks[cfg.entry], analysis.initial(cfg)
    )

    changed = True
    while changed:
        changed = False
        for idx in order:
            if idx == cfg.entry:
                in_fact: FactT | None = analysis.initial(cfg)
            else:
                incoming = [
                    value
                    for edge in cfg.preds(idx)
                    if (
                        value := _edge_value(
                            cfg, analysis, edge, solution.in_facts, solution.out_facts
                        )
                    )
                    is not None
                ]
                in_fact = _join_all(analysis, incoming)
            out_fact = (
                None
                if in_fact is None
                else analysis.transfer_block(cfg.blocks[idx], in_fact)
            )
            if (
                in_fact != solution.in_facts[idx]
                or out_fact != solution.out_facts[idx]
            ):
                solution.in_facts[idx] = in_fact
                solution.out_facts[idx] = out_fact
                changed = True
    return solution


def _solve_backward(cfg: CFG, analysis: Analysis[FactT]) -> Solution[FactT]:
    solution: Solution[FactT] = Solution(cfg, analysis)
    order = cfg.rpo()[::-1]
    for idx in order:
        solution.in_facts[idx] = None
        solution.out_facts[idx] = None

    changed = True
    while changed:
        changed = False
        for idx in order:
            if idx == cfg.exit:
                out_fact: FactT | None = analysis.initial(cfg)
            else:
                outgoing = [
                    value
                    for edge in cfg.succs(idx)
                    if (value := solution.in_facts[edge.dst]) is not None
                ]
                out_fact = _join_all(analysis, outgoing)
            in_fact = (
                None
                if out_fact is None
                else analysis.transfer_block(cfg.blocks[idx], out_fact)
            )
            if (
                in_fact != solution.in_facts[idx]
                or out_fact != solution.out_facts[idx]
            ):
                solution.in_facts[idx] = in_fact
                solution.out_facts[idx] = out_fact
                changed = True
    return solution
