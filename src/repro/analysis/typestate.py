"""Typestate abstractions the protocol rules (R9-R12) declare.

A typestate rule does not hand-roll an AST visitor; it *declares* a
protocol and lets this module run it over a function's CFG:

* :class:`FlagProtocol` -- a boolean protocol flag driven by calls:
  some calls **set** it (``journal.append`` -> "journaled"), some
  **clear** it (``os.fsync`` -> not "dirty"), and some **require** it
  set (must mode: ``store.apply`` needs "journaled" on every path) or
  clear (may mode: an ack must not happen while "dirty" on any path).
* :class:`ResourceProtocol` -- acquire/release tracking: calls matching
  an acquire pattern open a *site*; the site must reach a release
  method (``close``/``unlink``/...) or **escape** (be returned, passed
  to a call, stored into an object/container -- ownership handed off)
  on every path to the function exit, exceptional paths included.

Call matching is deliberately name-based (:class:`CallPattern`): the
linter has no type inference, so ``self.journal.append`` is recognised
by its terminal name plus required tokens in the receiver chain.  That
is the same pragmatic bar the R1-R8 rules already set, and it keeps the
protocols declarative enough to read in one screen.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Protocol

from repro.analysis.astutils import dotted_name, terminal_name
from repro.analysis.cfg import CFG, REFINE_NONE
from repro.analysis.dataflow import MAY, MUST, Analysis, Solution, solve

__all__ = [
    "CallPattern",
    "CallMatcher",
    "FlagProtocol",
    "ResourceProtocol",
    "Violation",
    "calls_in",
    "check_flag_protocol",
    "check_resource_protocol",
]


class CallMatcher(Protocol):
    """Anything that can recognise a call site."""

    def matches(self, call: ast.Call) -> bool: ...


@dataclass(frozen=True)
class CallPattern:
    """Name-based call recognition.

    ``terminal`` must equal the last component of the callee's dotted
    chain exactly; every token in ``chain`` must occur as a substring of
    some *earlier* (lowercased) component.  Examples::

        CallPattern("append", frozenset({"journal"}))
            matches  self.journal.append(...), journal.append(...),
                     self._journal.append(...)
        CallPattern("fsync")
            matches  os.fsync(...), fsync(...)
    """

    terminal: str
    chain: frozenset[str] = frozenset()

    def matches(self, call: ast.Call) -> bool:
        parts: list[str] = []
        current: ast.expr = call.func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
        elif parts and isinstance(current, (ast.Call, ast.Subscript)):
            # f(...).close() / d[k].close(): chain tokens cannot be
            # checked against the opaque base, but the terminal can.
            pass
        else:
            return False
        parts.reverse()
        if parts[-1] != self.terminal:
            return False
        head = [part.lower() for part in parts[:-1]]
        return all(any(token in part for part in head) for token in self.chain)


def calls_in(node: ast.AST) -> list[ast.Call]:
    """Call nodes under ``node`` in evaluation (post-) order.

    Children precede parents, so in ``store.apply(journal.append(x))``
    the append is seen first -- matching the interpreter, which
    evaluates arguments before the enclosing call.  Nested function /
    class bodies and lambdas are not descended (their calls run later,
    if ever).
    """
    found: list[ast.Call] = []

    def visit(current: ast.AST) -> None:
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            visit(child)
        if isinstance(current, ast.Call):
            found.append(current)

    visit(node)
    return found


@dataclass(frozen=True, order=True)
class Violation:
    """One protocol breach, pinned to a source location.

    Ordered by location-then-kind so deduplicated sets of violations
    sort deterministically without a key function.
    """

    line: int
    col: int
    kind: str
    detail: str


def _matches_any(patterns: tuple[CallMatcher, ...], call: ast.Call) -> bool:
    return any(pattern.matches(call) for pattern in patterns)


def _callee_repr(call: ast.Call) -> str:
    """A printable name for a call's callee (best effort)."""
    return dotted_name(call.func) or terminal_name(call.func) or "<call>"


# ----------------------------------------------------------------------
# Flag protocols (R9 journal-before-mutate, R12 fsync-before-ack)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FlagProtocol:
    """A single boolean protocol flag over one function.

    Attributes:
        flag: Name of the flag (used in messages).
        mode: :data:`~repro.analysis.dataflow.MUST` -- ``requires``
            calls need the flag set on **every** path (join =
            intersection); :data:`~repro.analysis.dataflow.MAY` --
            the flag is a hazard and ``requires`` calls need it clear
            on every path, i.e. clear even if **any** path set it
            (join = union).
        sets: Calls that raise the flag.
        clears: Calls that lower it.
        requires: The guarded calls.
        consume: Must mode only -- a satisfied guard *consumes* the
            flag, so two guarded calls need two set calls (one journal
            append blesses exactly one store mutation).
        check_returns: May mode -- also flag any ``return`` executed
            while the flag is (possibly) set: returning normally is an
            implicit ack.
    """

    flag: str
    mode: str
    sets: tuple[CallMatcher, ...]
    requires: tuple[CallMatcher, ...]
    clears: tuple[CallMatcher, ...] = ()
    consume: bool = False
    check_returns: bool = False

    def apply_stmt(
        self,
        stmt: ast.stmt,
        fact: frozenset[str],
        record: list[Violation] | None = None,
    ) -> frozenset[str]:
        """Transfer one statement; optionally record violations."""
        for call in calls_in(stmt):
            if self.clears and _matches_any(self.clears, call):
                fact = fact - {self.flag}
            if _matches_any(self.sets, call):
                fact = fact | {self.flag}
            if _matches_any(self.requires, call):
                held = self.flag in fact
                satisfied = held if self.mode == MUST else not held
                if not satisfied and record is not None:
                    record.append(
                        Violation(
                            call.lineno,
                            call.col_offset,
                            "require",
                            _callee_repr(call),
                        )
                    )
                if self.consume:
                    fact = fact - {self.flag}
        if (
            self.check_returns
            and self.mode == MAY
            and isinstance(stmt, ast.Return)
            and self.flag in fact
            and record is not None
        ):
            record.append(
                Violation(stmt.lineno, stmt.col_offset, "return", self.flag)
            )
        return fact


class _FlagAnalysis(Analysis[frozenset[str]]):
    def __init__(self, protocol: FlagProtocol) -> None:
        self.protocol = protocol
        self.direction = "forward"
        self.mode = protocol.mode

    def initial(self, cfg: CFG) -> frozenset[str]:
        return frozenset()

    def join(self, left: frozenset[str], right: frozenset[str]) -> frozenset[str]:
        if self.protocol.mode == MUST:
            return left & right
        return left | right

    def transfer_stmt(self, stmt: ast.stmt, fact: frozenset[str]) -> frozenset[str]:
        return self.protocol.apply_stmt(stmt, fact)


def check_flag_protocol(cfg: CFG, protocol: FlagProtocol) -> list[Violation]:
    """Solve the flag dataflow and report every breached guard."""
    solution = solve(cfg, _FlagAnalysis(protocol))
    recorded: list[Violation] = []
    for _block, stmt, before, _after in solution.stmt_facts():
        protocol.apply_stmt(stmt, before, record=recorded)
    # finally bodies are instantiated once per exit kind, so the same
    # source statement can sit in several blocks; dedupe by location.
    return sorted(set(recorded))


# ----------------------------------------------------------------------
# Resource protocols (R10 lease/handle leak)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Site:
    """One tracked acquisition: where it happened + current aliases."""

    line: int
    col: int
    label: str
    names: frozenset[str]


@dataclass(frozen=True)
class ResourceProtocol:
    """Acquire/release discipline for handle-like objects.

    Attributes:
        acquires: Calls whose *result* is a resource the function now
            owns.
        release_methods: Method names that discharge the obligation
            when invoked on an alias (``lease.close()``).
        description: Noun for messages ("shared-memory lease").
    """

    acquires: tuple[CallMatcher, ...]
    release_methods: frozenset[str]
    description: str = "resource"

    def is_acquire(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Call) and _matches_any(self.acquires, node)


def _target_names(target: ast.expr) -> set[str]:
    """Plain variable names bound by an assignment target."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names |= _target_names(element)
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()


def _collect_bare_names(node: ast.expr, into: set[str]) -> None:
    """Names in ``node`` excluding attribute/subscript bases.

    ``f(x)`` passes the handle itself; ``f(x.stats)`` / ``f(x[0])``
    passes something derived from it -- the handle stays owned here.
    """
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Name):
            into.add(current.id)
            continue
        if isinstance(current, (ast.Attribute, ast.Subscript)):
            # Skip the base chain, but a subscript's index expression
            # is an ordinary use.
            if isinstance(current, ast.Subscript):
                stack.append(current.slice)
            continue
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def escaping_names(stmt: ast.stmt) -> set[str]:
    """Variables whose value may leave this function's custody here.

    Escape sinks: call arguments, ``return``/``yield`` values,
    ``raise`` operands, and the right-hand side of a store into an
    attribute, subscript, or freshly built container.  A name used as
    an attribute/subscript base (``lease.close()``, ``seg.buf[:]``)
    does *not* escape -- only derived values leave.
    """
    escapes: set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            for arg in node.args:
                _collect_bare_names(arg, escapes)
            for keyword in node.keywords:
                _collect_bare_names(keyword.value, escapes)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
            _collect_bare_names(node.value, escapes)
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        _collect_bare_names(stmt.value, escapes)
    if isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            _collect_bare_names(stmt.exc, escapes)
        if stmt.cause is not None:
            _collect_bare_names(stmt.cause, escapes)
    if isinstance(stmt, ast.Assign):
        plain = all(isinstance(t, ast.Name) for t in stmt.targets)
        trivial = isinstance(stmt.value, (ast.Name, ast.Call))
        if not (plain and trivial):
            # Storing into self.x / d[k] / unpacking a built container
            # hands the value to something that outlives this frame.
            _collect_bare_names(stmt.value, escapes)
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)) and getattr(
        stmt, "value", None
    ) is not None:
        if not isinstance(stmt.target, ast.Name):
            _collect_bare_names(stmt.value, escapes)  # type: ignore[arg-type]
    return escapes


_Fact = frozenset[Site]


class _ResourceAnalysis(Analysis[_Fact]):
    def __init__(self, protocol: ResourceProtocol) -> None:
        self.protocol = protocol
        self.direction = "forward"
        self.mode = MAY

    def initial(self, cfg: CFG) -> _Fact:
        return frozenset()

    def join(self, left: _Fact, right: _Fact) -> _Fact:
        return left | right

    def refine(self, edge, fact: _Fact) -> _Fact:  # type: ignore[override]
        assert edge.refine is not None
        name, tag = edge.refine
        if tag != REFINE_NONE:
            return fact
        # On this edge ``name`` is provably None: it does not hold a
        # live handle, so drop it (and any site it was the last alias
        # of -- that acquisition did not happen on this path).
        kept: set[Site] = set()
        for site in fact:
            if name not in site.names:
                kept.add(site)
            elif site.names != frozenset({name}):
                kept.add(
                    Site(site.line, site.col, site.label, site.names - {name})
                )
        return frozenset(kept)

    def _discharge(self, stmt: ast.stmt, fact: _Fact) -> _Fact:
        """Apply the obligation-discharging parts of one statement.

        Releases (``lease.close()``) and escapes (handing the handle to
        a call/return/container) discharge sites.  This is also the
        exceptional-edge transfer: if the release or the hand-off call
        itself raises, the obligation is still no longer this
        function's (else every ``finally: lease.close()`` would read as
        a leak path).
        """
        protocol = self.protocol
        for call in calls_in(stmt):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in protocol.release_methods
                and isinstance(func.value, ast.Name)
            ):
                receiver = func.value.id
                fact = frozenset(s for s in fact if receiver not in s.names)
        escaped = escaping_names(stmt)
        if escaped:
            fact = frozenset(s for s in fact if not (s.names & escaped))
        return fact

    def transfer_exc(self, block, fact: _Fact) -> _Fact:  # type: ignore[override]
        for stmt in block.stmts:
            fact = self._discharge(stmt, fact)
        return fact

    def transfer_stmt(self, stmt: ast.stmt, fact: _Fact) -> _Fact:
        protocol = self.protocol
        fact = self._discharge(stmt, fact)

        # Bindings: new acquisitions, aliases, rebinds.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                name = target.id
                fact = _drop_alias(fact, name)
                if protocol.is_acquire(stmt.value):
                    if not getattr(stmt, "_geacc_with", False):
                        # `with acquire() as x` releases via __exit__;
                        # a plain assignment makes this frame the owner.
                        fact = fact | {
                            Site(
                                stmt.lineno,
                                stmt.col_offset,
                                protocol.description,
                                frozenset({name}),
                            )
                        }
                elif isinstance(stmt.value, ast.Name):
                    fact = _add_alias(fact, stmt.value.id, name)
            else:
                for name in _target_names(target):
                    fact = _drop_alias(fact, name)
        elif isinstance(stmt, ast.Expr) and protocol.is_acquire(stmt.value):
            if not getattr(stmt, "_geacc_with", False):
                # Acquired and immediately dropped: an unconditional leak,
                # reported at exit via the alias-less site.
                fact = fact | {
                    Site(
                        stmt.lineno,
                        stmt.col_offset,
                        protocol.description,
                        frozenset(),
                    )
                }
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    fact = _remove_name(fact, target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)) and isinstance(
            stmt.target, ast.Name
        ):
            fact = _drop_alias(fact, stmt.target.id)
        return fact


def _drop_alias(fact: _Fact, name: str) -> _Fact:
    """Rebinding ``name``: it no longer refers to any tracked site.

    A site whose *only* alias is rebound keeps living with no aliases:
    the handle is now unreachable and will be reported as a leak.
    """
    return _remove_name(fact, name)


def _remove_name(fact: _Fact, name: str) -> _Fact:
    changed = False
    result: set[Site] = set()
    for site in fact:
        if name in site.names:
            changed = True
            result.add(Site(site.line, site.col, site.label, site.names - {name}))
        else:
            result.add(site)
    return frozenset(result) if changed else fact


def _add_alias(fact: _Fact, source: str, alias: str) -> _Fact:
    result: set[Site] = set()
    for site in fact:
        if source in site.names:
            result.add(
                Site(site.line, site.col, site.label, site.names | {alias})
            )
        else:
            result.add(site)
    return frozenset(result)


def check_resource_protocol(cfg: CFG, protocol: ResourceProtocol) -> list[Violation]:
    """Report acquisitions that can reach the function exit unreleased."""
    solution: Solution[_Fact] = solve(cfg, _ResourceAnalysis(protocol))
    leaked = solution.in_facts[cfg.exit] or frozenset()
    return sorted(
        {
            Violation(site.line, site.col, "leak", protocol.description)
            for site in leaked
        }
    )
