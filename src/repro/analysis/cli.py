"""``geacc-lint``: the command-line front end of :mod:`repro.analysis`.

Usage::

    geacc-lint src/repro              # lint a tree, exit 1 on findings
    geacc-lint --list-rules           # show the rule table
    geacc-lint --select R1,R5 src     # run a subset
    geacc-lint --ignore R4 src        # run all but some

Also reachable as ``geacc lint`` (same flags) and
``python -m repro.analysis.cli``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.engine import run_lint
from repro.analysis.registry import RULES, load_rules


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="geacc-lint",
        description="GEACC-aware static analysis (determinism, float discipline, "
        "registry completeness, ordering safety, API hygiene)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="append a per-rule findings count",
    )
    return parser


def list_rules() -> str:
    """Render the rule table (id, title, rationale)."""
    load_rules()  # ensure the table is populated
    lines = []
    for rule_id in sorted(RULES):
        cls = RULES[rule_id]
        lines.append(f"{rule_id}  {cls.title}")
        lines.append(f"    rationale: {cls.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code (0 clean, 1 findings)."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    select = _split_ids(args.select)
    if args.select is not None and not select:
        # An empty --select would run zero rules and report any tree as
        # clean; treat it as the usage error it almost certainly is.
        print("geacc-lint: --select given but names no rules", file=sys.stderr)
        return 2
    try:
        findings = run_lint(
            args.paths,
            select=select,
            ignore=_split_ids(args.ignore),
        )
    except ValueError as exc:  # unknown rule ids in --select/--ignore
        print(f"geacc-lint: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:  # unreadable path
        print(f"geacc-lint: {exc}", file=sys.stderr)
        return 2
    for diagnostic in findings:
        print(diagnostic.render())
    if args.statistics and findings:
        counts: dict[str, int] = {}
        for diagnostic in findings:
            counts[diagnostic.rule_id] = counts.get(diagnostic.rule_id, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        print(f"-- {len(findings)} finding(s) ({summary})")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
