"""``geacc-lint``: the command-line front end of :mod:`repro.analysis`.

Usage::

    geacc-lint src/repro              # lint a tree, exit 1 on findings
    geacc-lint --list-rules           # show the rule table
    geacc-lint --select R1,R5 src     # run a subset
    geacc-lint --ignore R4 src        # run all but some
    geacc-lint --format json src      # one JSON object per finding
    geacc-lint --jobs 0 src           # fan files out across all cores
    geacc-lint --exclude 'fixtures' t # skip matching subtrees

Also reachable as ``geacc lint`` (same flags) and
``python -m repro.analysis.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.analysis.engine import run_lint
from repro.analysis.registry import RULES, load_rules


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="geacc-lint",
        description="GEACC-aware static analysis (determinism, float discipline, "
        "registry completeness, ordering safety, API hygiene)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="append a per-rule findings count",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format: grep-friendly text (default) or one JSON "
        "object per diagnostic (includes suppressed findings, marked)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parsing and per-file rules "
        "(default: 1; 0 = all cores); output is identical to --jobs 1",
    )
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="GLOB",
        help="skip files whose root-relative path matches GLOB "
        "(a bare directory name excludes its whole subtree; repeatable)",
    )
    return parser


def list_rules() -> str:
    """Render the rule table (id, title, rationale)."""
    load_rules()  # ensure the table is populated
    lines = []
    for rule_id in sorted(RULES):
        cls = RULES[rule_id]
        lines.append(f"{rule_id}  {cls.title}")
        lines.append(f"    rationale: {cls.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code (0 clean, 1 findings)."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    select = _split_ids(args.select)
    if args.select is not None and not select:
        # An empty --select would run zero rules and report any tree as
        # clean; treat it as the usage error it almost certainly is.
        print("geacc-lint: --select given but names no rules", file=sys.stderr)
        return 2
    try:
        findings = run_lint(
            args.paths,
            select=select,
            ignore=_split_ids(args.ignore),
            # JSON consumers get the full audit picture; text output
            # stays quiet about what directives already silenced.
            include_suppressed=(args.format == "json"),
            jobs=args.jobs,
            exclude=args.exclude,
        )
    except ValueError as exc:  # unknown rule ids in --select/--ignore
        print(f"geacc-lint: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:  # unreadable path
        print(f"geacc-lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        for diagnostic in findings:
            print(json.dumps(diagnostic.to_json(), sort_keys=True))
    else:
        for diagnostic in findings:
            print(diagnostic.render())
    active = [d for d in findings if not d.suppressed]
    if args.statistics and active:
        counts: dict[str, int] = {}
        for diagnostic in active:
            counts[diagnostic.rule_id] = counts.get(diagnostic.rule_id, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        print(f"-- {len(active)} finding(s) ({summary})")
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
