"""Inline suppression comments for :mod:`repro.analysis`.

Two forms are recognised:

* ``# geacc-lint: disable=R2 reason=...`` on a line of a finding
  silences the listed rules for that *statement* (see binding below).
  ``disable=R1,R2`` silences several; a bare ``disable`` (no ``=``)
  silences every rule.
* ``# geacc-lint: disable-file=R4 reason=...`` anywhere in a file
  silences the listed rules (or, with no ``=``, all rules) for the
  whole file.

Every suppression must carry a ``reason=`` clause -- the rest of the
comment after ``reason=`` is free text explaining why the reviewed
exception is safe.  A bare directive still *works* (the listed rules
are silenced) but is itself reported by R13, which cannot be
suppressed: the audit trail is the point.

Binding: a ``disable`` directive binds to the whole source span of the
innermost simple statement containing its line, and a directive on a
``def``/``class`` line (or one of its decorator lines) covers the
definition line and its decorators.  So the comment can sit on the
closing parenthesis of a multi-line call and still silence a finding
reported at the statement's first line, and a finding on a decorator
is silenced by a directive beside the decorator or the ``def`` itself.
Without a parse tree (e.g. the file has a syntax error) directives
bind to their own physical line only.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

_DIRECTIVE = re.compile(
    r"#\s*geacc-lint:\s*(?P<scope>disable(?:-file)?)"
    r"(?:\s*=\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*))?"
    r"(?:\s+reason\s*=\s*(?P<reason>\S.*\S|\S))?"
)

#: Sentinel meaning "every rule" in a suppression set.
ALL_RULES = "*"


@dataclass(frozen=True)
class Directive:
    """One parsed ``# geacc-lint:`` comment.

    Attributes:
        line: 1-based physical line the comment sits on.
        col: 0-based column where the directive text starts.
        scope: ``"disable"`` or ``"disable-file"``.
        rules: The rule IDs listed (``{"*"}`` for a bare directive).
        reason: Text after ``reason=``, or None when absent (an R13
            finding).
    """

    line: int
    col: int
    scope: str
    rules: frozenset[str]
    reason: str | None


@dataclass
class SuppressionIndex:
    """Per-file suppression state parsed from source comments.

    Attributes:
        by_line: Maps a 1-based line number to the set of rule IDs
            suppressed on that line (``{"*"}`` means all).  Already
            expanded over statement spans when a tree was available.
        whole_file: Rule IDs suppressed for the entire file.
        directives: Every directive found, for hygiene auditing (R13).
    """

    by_line: dict[int, set[str]] = field(default_factory=dict)
    whole_file: set[str] = field(default_factory=set)
    directives: list[Directive] = field(default_factory=list)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True if ``rule_id`` is silenced at ``line``."""
        if ALL_RULES in self.whole_file or rule_id in self.whole_file:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return ALL_RULES in rules or rule_id in rules


def _statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line spans a line-scoped directive binds across.

    Simple statements contribute their full ``lineno..end_lineno`` span
    (a multi-line call is one statement; the comment usually fits only
    on its last line while findings point at the first).  Definitions
    contribute their decorator lines plus the ``def``/``class`` line --
    never the body, which would turn one comment into a function-wide
    suppression.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            first = min(
                [node.lineno] + [d.lineno for d in node.decorator_list]
            )
            spans.append((first, node.lineno))
            continue
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(
            node,
            (
                ast.If,
                ast.While,
                ast.For,
                ast.AsyncFor,
                ast.With,
                ast.AsyncWith,
                ast.Try,
                ast.Match,
            ),
        ):
            continue  # compound: binding across the body is too blunt
        end = getattr(node, "end_lineno", None) or node.lineno
        if end > node.lineno:
            spans.append((node.lineno, end))
    return spans


def _comment_tokens(source_lines: list[str]) -> list[tuple[int, int, str]]:
    """``(line, col, text)`` of every real comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps directive
    *mentions* inside docstrings and string literals -- this package
    documents its own comment syntax in several places -- from being
    read as live directives.  Files the tokenizer chokes on (it can
    object to some encodings/continuations even when ``ast.parse``
    succeeded) fall back to the textual scan.
    """
    source = "\n".join(source_lines) + "\n"
    try:
        return [
            (token.start[0], token.start[1], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        return [
            (lineno, 0, text)
            for lineno, text in enumerate(source_lines, start=1)
            if "#" in text
        ]


def parse_suppressions(
    source_lines: list[str], tree: ast.Module | None = None
) -> SuppressionIndex:
    """Scan a file's comments for ``geacc-lint`` directives.

    When ``tree`` is given, line-scoped directives are expanded over
    the span of the statement they sit in (see module docstring).
    """
    index = SuppressionIndex()
    for lineno, start_col, text in _comment_tokens(source_lines):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        rules = (
            frozenset(part.strip() for part in listed.split(","))
            if listed
            else frozenset({ALL_RULES})
        )
        scope = match.group("scope")
        index.directives.append(
            Directive(
                line=lineno,
                col=start_col + match.start(),
                scope=scope,
                rules=rules,
                reason=match.group("reason"),
            )
        )
        if scope == "disable-file":
            index.whole_file.update(rules)
        else:
            index.by_line.setdefault(lineno, set()).update(rules)
    if tree is not None and index.by_line:
        for start, end in _statement_spans(tree):
            bound: set[str] = set()
            for line in range(start, end + 1):
                bound |= index.by_line.get(line, set())
            if bound:
                for line in range(start, end + 1):
                    index.by_line.setdefault(line, set()).update(bound)
    return index
