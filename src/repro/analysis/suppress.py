"""Inline suppression comments for :mod:`repro.analysis`.

Two forms are recognised:

* ``# geacc-lint: disable=R2`` on the *same line* as a finding silences
  the listed rules for that line only.  ``disable=R1,R2`` silences
  several; a bare ``disable`` (no ``=``) silences every rule on the
  line.
* ``# geacc-lint: disable-file=R4`` anywhere in a file silences the
  listed rules (or, with no ``=``, all rules) for the whole file.

Suppressions are an explicit audit trail: the comment marks a reviewed
exception (e.g. an intentional exact float comparison of values copied
bit-for-bit), not an escape hatch, so prefer fixing the finding.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_DIRECTIVE = re.compile(
    r"#\s*geacc-lint:\s*(?P<scope>disable(?:-file)?)\s*"
    r"(?:=\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*))?"
)

#: Sentinel meaning "every rule" in a suppression set.
ALL_RULES = "*"


@dataclass
class SuppressionIndex:
    """Per-file suppression state parsed from source comments.

    Attributes:
        by_line: Maps a 1-based line number to the set of rule IDs
            suppressed on that line (``{"*"}`` means all).
        whole_file: Rule IDs suppressed for the entire file.
    """

    by_line: dict[int, set[str]] = field(default_factory=dict)
    whole_file: set[str] = field(default_factory=set)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True if ``rule_id`` is silenced at ``line``."""
        if ALL_RULES in self.whole_file or rule_id in self.whole_file:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return ALL_RULES in rules or rule_id in rules


def parse_suppressions(source_lines: list[str]) -> SuppressionIndex:
    """Scan source lines for ``geacc-lint`` directives.

    The scan is textual (regex over raw lines) rather than token-based:
    directives inside string literals would be misread, but a literal
    containing ``# geacc-lint:`` only occurs in this package's own
    tests, which lint synthetic snippets, never real modules.
    """
    index = SuppressionIndex()
    for lineno, text in enumerate(source_lines, start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        rules = (
            {part.strip() for part in listed.split(",")} if listed else {ALL_RULES}
        )
        if match.group("scope") == "disable-file":
            index.whole_file.update(rules)
        else:
            index.by_line.setdefault(lineno, set()).update(rules)
    return index
