"""The ``geacc-lint`` engine: collect files, parse, run rules, filter.

The engine is deliberately tiny: discovery (``.py`` files under the
given roots), one :func:`ast.parse` per file, a pass over per-module
rules, one pass of project-level rules, and suppression filtering.  All
pattern knowledge lives in the rule classes (see
:mod:`repro.analysis.registry`).
"""

from __future__ import annotations

import fnmatch
import functools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path, PurePosixPath

import ast

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, load_rules
from repro.analysis.suppress import SuppressionIndex, parse_suppressions

#: Rule id reported for files the engine cannot parse at all.
SYNTAX_ERROR_ID = "E0"


@dataclass
class ParsedModule:
    """One parsed source file plus everything rules need to inspect it.

    Attributes:
        path: Absolute filesystem path.
        display_path: Path as shown in diagnostics (input path joined
            with the in-tree relative path).
        relpath: POSIX-style path relative to the lint root; rules use
            it for scoping (e.g. R2 only applies under ``core/`` and
            ``flow/``).
        tree: The parsed AST.
        lines: Raw source lines (1-based access via ``lines[i - 1]``).
        suppressions: Parsed ``# geacc-lint: disable`` directives.
    """

    path: Path
    display_path: str
    relpath: str
    tree: ast.Module
    lines: list[str]
    suppressions: SuppressionIndex

    @property
    def relparts(self) -> tuple[str, ...]:
        """Components of :attr:`relpath` (``core/model.py`` -> ``("core", "model.py")``)."""
        return PurePosixPath(self.relpath).parts


@dataclass
class Project:
    """The whole file set handed to project-level rules."""

    roots: list[Path]
    modules: list[ParsedModule] = field(default_factory=list)

    def module_at(self, relpath: str) -> ParsedModule | None:
        """Find a module by exact relative path, or None."""
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None

    def modules_under(self, relprefix: str) -> list[ParsedModule]:
        """All modules whose relpath sits under ``relprefix`` (a dir)."""
        prefix = relprefix.rstrip("/") + "/"
        return [m for m in self.modules if m.relpath.startswith(prefix)]


def _excluded(relpath: str, exclude: Sequence[str]) -> bool:
    """True if ``relpath`` matches any exclusion glob.

    A pattern matches the file's root-relative POSIX path, and a
    pattern naming a directory (``fixtures`` or ``fixtures/``) excludes
    the whole tree under it.
    """
    for pattern in exclude:
        if fnmatch.fnmatch(relpath, pattern):
            return True
        if fnmatch.fnmatch(relpath, pattern.rstrip("/") + "/*"):
            return True
    return False


def _discover(
    paths: Sequence[str | Path], exclude: Sequence[str] | None = None
) -> list[tuple[Path, str, str]]:
    """Expand input paths into ``(abs_path, display_path, relpath)`` triples."""
    found: list[tuple[Path, str, str]] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for file_path in sorted(root.rglob("*.py")):
                rel = file_path.relative_to(root).as_posix()
                if exclude and _excluded(rel, exclude):
                    continue
                found.append((file_path, str(Path(raw) / rel), rel))
        else:
            if exclude and _excluded(root.name, exclude):
                continue
            found.append((root, str(raw), root.name))
    return found


def _parse_one(
    file_path: Path, display: str, rel: str
) -> ParsedModule | Diagnostic:
    """Parse one file; a syntax error comes back as its ``E0`` finding."""
    source = file_path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(file_path))
    except SyntaxError as exc:
        return Diagnostic(
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=SYNTAX_ERROR_ID,
            message=f"syntax error: {exc.msg}",
        )
    lines = source.splitlines()
    return ParsedModule(
        path=file_path,
        display_path=display,
        relpath=rel,
        tree=tree,
        lines=lines,
        suppressions=parse_suppressions(lines, tree),
    )


def parse_project(
    paths: Sequence[str | Path], exclude: Sequence[str] | None = None
) -> tuple[Project, list[Diagnostic]]:
    """Parse every discovered file; syntax errors become ``E0`` findings."""
    project = Project(roots=[Path(p) for p in paths])
    errors: list[Diagnostic] = []
    for file_path, display, rel in _discover(paths, exclude):
        parsed = _parse_one(file_path, display, rel)
        if isinstance(parsed, Diagnostic):
            errors.append(parsed)
        else:
            project.modules.append(parsed)
    return project, errors


def _check_one(
    task: tuple[str, str, str], rule_ids: tuple[str, ...]
) -> tuple[ParsedModule | None, list[Diagnostic]]:
    """Worker side of ``--jobs``: parse one file, run the module rules.

    Module-level (and partial-friendly) so it pickles into spawn
    workers; the parent assembles the returned modules into a
    :class:`Project` for the project-level pass and does all
    suppression filtering itself.
    """
    path_str, display, rel = task
    parsed = _parse_one(Path(path_str), display, rel)
    if isinstance(parsed, Diagnostic):
        return None, [parsed]
    rules = load_rules(select=rule_ids)
    findings: list[Diagnostic] = []
    for rule in rules:
        findings.extend(rule.check_module(parsed))
    return parsed, findings


def lint_project(
    project: Project,
    rules: Sequence[Rule],
    include_suppressed: bool = False,
    module_findings: Sequence[Diagnostic] | None = None,
) -> list[Diagnostic]:
    """Run ``rules`` over a parsed project and filter suppressed findings.

    Args:
        project: The parsed file set.
        rules: Rule instances to run.
        include_suppressed: Keep findings silenced by inline directives,
            marked ``suppressed=True``, instead of dropping them.
        module_findings: Per-module findings already computed elsewhere
            (the ``--jobs`` worker pass); when given, only the
            project-level rules run here.
    """
    findings: list[Diagnostic] = list(module_findings or ())
    if module_findings is None:
        for module in project.modules:
            for rule in rules:
                findings.extend(rule.check_module(module))
    for rule in rules:
        findings.extend(rule.check_project(project))
    by_display = {m.display_path: m.suppressions for m in project.modules}
    unsuppressible = {r.rule_id for r in rules if not r.suppressible}
    kept: list[Diagnostic] = []
    for diag in findings:
        if _is_suppressed(by_display, unsuppressible, diag):
            if include_suppressed:
                kept.append(replace(diag, suppressed=True))
        else:
            kept.append(diag)
    return sorted(set(kept))


def _is_suppressed(
    by_display: dict[str, SuppressionIndex],
    unsuppressible: set[str],
    diag: Diagnostic,
) -> bool:
    if diag.rule_id in unsuppressible:
        return False
    index = by_display.get(diag.path)
    return index is not None and index.is_suppressed(diag.line, diag.rule_id)


def _run_lint_parallel(
    paths: Sequence[str | Path],
    rules: Sequence[Rule],
    include_suppressed: bool,
    jobs: int,
    exclude: Sequence[str] | None,
) -> list[Diagnostic]:
    """The ``--jobs N`` path: per-file parse + module rules in workers.

    Raises :class:`~repro.parallel.executor.ParallelUnavailableError`
    when no usable start method exists; the caller degrades to serial.
    """
    from repro.parallel.maplib import parallel_map

    tasks = [
        (str(file_path), display, rel)
        for file_path, display, rel in _discover(paths, exclude)
    ]
    worker = functools.partial(
        _check_one, rule_ids=tuple(r.rule_id for r in rules)
    )
    results = parallel_map(worker, tasks, jobs)
    project = Project(roots=[Path(p) for p in paths])
    errors: list[Diagnostic] = []
    module_findings: list[Diagnostic] = []
    for module, diags in results:
        if module is None:
            errors.extend(diags)
        else:
            project.modules.append(module)
            module_findings.extend(diags)
    return sorted(
        errors
        + lint_project(
            project,
            rules,
            include_suppressed=include_suppressed,
            module_findings=module_findings,
        )
    )


def run_lint(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    *,
    include_suppressed: bool = False,
    jobs: int = 1,
    exclude: Sequence[str] | None = None,
) -> list[Diagnostic]:
    """Lint ``paths`` with the registered rules; the one-call API.

    Returns the sorted findings (syntax errors first-class among them,
    never filtered). Suppressed findings are dropped unless
    ``include_suppressed`` is set, in which case they are kept with
    ``suppressed=True``; callers deriving an exit code must look only
    at unsuppressed ones. ``jobs > 1`` fans per-file work out through
    :func:`repro.parallel.maplib.parallel_map` (``0`` = all cores) and
    produces byte-identical output to ``jobs=1``; if process
    parallelism is unavailable the engine silently runs serially.
    ``exclude`` holds root-relative globs for files to skip.
    """
    rules = load_rules(select=select, ignore=ignore)
    if jobs != 1:
        # Imported lazily: the serial path must not pay for (or depend
        # on) the numeric stack repro.parallel pulls in.
        from repro.parallel.executor import ParallelUnavailableError

        try:
            return _run_lint_parallel(paths, rules, include_suppressed, jobs, exclude)
        except ParallelUnavailableError:
            pass  # fall through to the serial path
    project, errors = parse_project(paths, exclude)
    return sorted(
        errors + lint_project(project, rules, include_suppressed=include_suppressed)
    )
