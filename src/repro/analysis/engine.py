"""The ``geacc-lint`` engine: collect files, parse, run rules, filter.

The engine is deliberately tiny: discovery (``.py`` files under the
given roots), one :func:`ast.parse` per file, a pass over per-module
rules, one pass of project-level rules, and suppression filtering.  All
pattern knowledge lives in the rule classes (see
:mod:`repro.analysis.registry`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

import ast

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, load_rules
from repro.analysis.suppress import SuppressionIndex, parse_suppressions

#: Rule id reported for files the engine cannot parse at all.
SYNTAX_ERROR_ID = "E0"


@dataclass
class ParsedModule:
    """One parsed source file plus everything rules need to inspect it.

    Attributes:
        path: Absolute filesystem path.
        display_path: Path as shown in diagnostics (input path joined
            with the in-tree relative path).
        relpath: POSIX-style path relative to the lint root; rules use
            it for scoping (e.g. R2 only applies under ``core/`` and
            ``flow/``).
        tree: The parsed AST.
        lines: Raw source lines (1-based access via ``lines[i - 1]``).
        suppressions: Parsed ``# geacc-lint: disable`` directives.
    """

    path: Path
    display_path: str
    relpath: str
    tree: ast.Module
    lines: list[str]
    suppressions: SuppressionIndex

    @property
    def relparts(self) -> tuple[str, ...]:
        """Components of :attr:`relpath` (``core/model.py`` -> ``("core", "model.py")``)."""
        return PurePosixPath(self.relpath).parts


@dataclass
class Project:
    """The whole file set handed to project-level rules."""

    roots: list[Path]
    modules: list[ParsedModule] = field(default_factory=list)

    def module_at(self, relpath: str) -> ParsedModule | None:
        """Find a module by exact relative path, or None."""
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None

    def modules_under(self, relprefix: str) -> list[ParsedModule]:
        """All modules whose relpath sits under ``relprefix`` (a dir)."""
        prefix = relprefix.rstrip("/") + "/"
        return [m for m in self.modules if m.relpath.startswith(prefix)]


def _discover(paths: Sequence[str | Path]) -> list[tuple[Path, str, str]]:
    """Expand input paths into ``(abs_path, display_path, relpath)`` triples."""
    found: list[tuple[Path, str, str]] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for file_path in sorted(root.rglob("*.py")):
                rel = file_path.relative_to(root).as_posix()
                found.append((file_path, str(Path(raw) / rel), rel))
        else:
            found.append((root, str(raw), root.name))
    return found


def parse_project(paths: Sequence[str | Path]) -> tuple[Project, list[Diagnostic]]:
    """Parse every discovered file; syntax errors become ``E0`` findings."""
    project = Project(roots=[Path(p) for p in paths])
    errors: list[Diagnostic] = []
    for file_path, display, rel in _discover(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as exc:
            errors.append(
                Diagnostic(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=SYNTAX_ERROR_ID,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        lines = source.splitlines()
        project.modules.append(
            ParsedModule(
                path=file_path,
                display_path=display,
                relpath=rel,
                tree=tree,
                lines=lines,
                suppressions=parse_suppressions(lines),
            )
        )
    return project, errors


def lint_project(project: Project, rules: Sequence[Rule]) -> list[Diagnostic]:
    """Run ``rules`` over a parsed project and filter suppressed findings."""
    findings: list[Diagnostic] = []
    suppression_by_display = {m.display_path: m.suppressions for m in project.modules}
    for module in project.modules:
        for rule in rules:
            findings.extend(rule.check_module(module))
    for rule in rules:
        findings.extend(rule.check_project(project))
    kept = [
        diag
        for diag in findings
        if not _is_suppressed(suppression_by_display, diag)
    ]
    return sorted(set(kept))


def _is_suppressed(
    by_display: dict[str, SuppressionIndex], diag: Diagnostic
) -> bool:
    index = by_display.get(diag.path)
    return index is not None and index.is_suppressed(diag.line, diag.rule_id)


def run_lint(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Lint ``paths`` with the registered rules; the one-call API.

    Returns the sorted, suppression-filtered findings (syntax errors
    first-class among them, never filtered).
    """
    project, errors = parse_project(paths)
    rules = load_rules(select=select, ignore=ignore)
    return sorted(errors + lint_project(project, rules))
