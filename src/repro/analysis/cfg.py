"""Intra-procedural control-flow graphs over :mod:`ast`.

The typestate rules (R9-R12) need *paths*, not nodes: "is every store
mutation preceded by a journal append on **every** path", "does this
shared-memory lease reach ``close()`` even when the statement between
acquire and release raises".  This module builds, per function, a CFG
precise enough to answer those questions:

* basic blocks of **simple** statements, with compound statements
  (``if``/``while``/``for``/``try``/``with``/``match``) lowered to
  blocks and edges;
* **exceptional edges**: every statement that can raise (any statement
  containing a call, plus ``raise``/``assert`` and ``with`` entry) sits
  in its own block with an ``exc`` edge to the innermost handler
  dispatch -- or to the function exit when uncaught.  Because the
  raising statement is alone in its block, a dataflow engine can
  propagate the *pre*-statement fact along the ``exc`` edge (the
  exception fired before the assignment bound);
* **``finally`` routing**: every way out of a ``try`` with a
  ``finally`` -- normal completion, ``return``, ``break``,
  ``continue``, an unhandled exception -- flows through a per-exit-kind
  copy of the ``finally`` body, the same duplication CPython's compiler
  performs;
* **branch refinements**: edges out of ``if x is None`` / ``if x`` /
  ``while x is not None`` tests carry a ``(name, "none"|"notnone")``
  tag so a typestate analysis can drop a handle on the branch where it
  is provably ``None`` (the ``if lease is not None: lease.close()``
  idiom in :mod:`repro.parallel.executor`).

Loop headers hold synthetic statements (the ``for`` target assignment,
the loop/branch test expression) so a statement-folding transfer
function sees every evaluation the interpreter performs; the synthetic
nodes are tagged ``_geacc_for`` / ``_geacc_with`` so rules can
special-case iteration rebinding and context-managed acquisition.

The graph is deliberately intra-procedural: calls are opaque events.
That is the right altitude for protocol linting -- the protocols
(journal-before-mutate, acquire-release, fsync-before-ack) are local
contracts of one function's body, and the escape analysis in
:mod:`repro.analysis.typestate` hands responsibility over at call
boundaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Edge kinds.
NORMAL = "normal"
EXC = "exc"

#: Refinement tags attached to branch edges.
REFINE_NONE = "none"
REFINE_NOT_NONE = "notnone"

_FunctionDef = ast.FunctionDef | ast.AsyncFunctionDef

#: Statement types that terminate a block unconditionally.
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)

#: Handler annotations treated as catching *every* exception.
_CATCH_ALL_NAMES = frozenset({"BaseException", "Exception"})


@dataclass
class Block:
    """One basic block: straight-line simple statements."""

    idx: int
    stmts: list[ast.stmt] = field(default_factory=list)


@dataclass(frozen=True)
class Edge:
    """A directed CFG edge.

    Attributes:
        src: Source block index.
        dst: Destination block index.
        kind: ``"normal"`` or ``"exc"`` (exception propagation; dataflow
            engines propagate the source block's *entry* fact along it).
        refine: Optional ``(variable, "none"|"notnone")`` branch fact.
    """

    src: int
    dst: int
    kind: str = NORMAL
    refine: tuple[str, str] | None = None


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: _FunctionDef) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self.edges: list[Edge] = []
        self.entry: int = -1
        self.exit: int = -1
        self._succ: dict[int, list[Edge]] = {}
        self._pred: dict[int, list[Edge]] = {}

    # ------------------------------------------------------------------
    # Construction (used by _Builder)
    # ------------------------------------------------------------------

    def new_block(self) -> int:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        self._succ[block.idx] = []
        self._pred[block.idx] = []
        return block.idx

    def add_edge(
        self,
        src: int,
        dst: int,
        kind: str = NORMAL,
        refine: tuple[str, str] | None = None,
    ) -> None:
        edge = Edge(src, dst, kind, refine)
        if edge in self._succ[src]:
            return
        self.edges.append(edge)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def succs(self, idx: int) -> list[Edge]:
        return self._succ[idx]

    def preds(self, idx: int) -> list[Edge]:
        return self._pred[idx]

    def rpo(self) -> list[int]:
        """Block indices in reverse postorder from the entry."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(idx: int) -> None:
            stack = [(idx, iter(self._succ[idx]))]
            seen.add(idx)
            while stack:
                node, it = stack[-1]
                advanced = False
                for edge in it:
                    if edge.dst not in seen:
                        seen.add(edge.dst)
                        stack.append((edge.dst, iter(self._succ[edge.dst])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        # Unreachable blocks (dead code islands) go last, in index order,
        # so checkers still see their statements with a bottom fact.
        for block in self.blocks:
            if block.idx not in seen:
                order.append(block.idx)
        order.reverse()
        return order


# ----------------------------------------------------------------------
# Statement classification helpers
# ----------------------------------------------------------------------


def _contains_call(node: ast.AST) -> bool:
    """True if evaluating ``node`` may invoke user code (and thus raise).

    Nested function/class definitions and lambdas are *not* descended:
    defining them executes no body code.
    """
    for child in iter_expressions(node):
        if isinstance(child, (ast.Call, ast.Await)):
            return True
    return False


def iter_expressions(node: ast.AST):  # type: ignore[no-untyped-def]
    """Walk ``node`` without descending into nested function/class bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        if current is not node and isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def stmt_can_raise(stmt: ast.stmt) -> bool:
    """Statements whose execution may raise (for exceptional edges)."""
    if isinstance(stmt, (ast.Raise, ast.Assert, ast.Import, ast.ImportFrom)):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    return _contains_call(stmt)


def _const_truth(test: ast.expr) -> bool | None:
    """The constant truth value of a loop/branch test, or None."""
    if isinstance(test, ast.Constant):
        return bool(test.value)
    return None


def _branch_refinements(
    test: ast.expr,
) -> tuple[tuple[str, str] | None, tuple[str, str] | None]:
    """``(true_edge_refine, false_edge_refine)`` for a branch test."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        true_ref, false_ref = _branch_refinements(test.operand)
        return false_ref, true_ref
    if isinstance(test, ast.Name):
        # Truthiness: on the false edge the object is None-or-empty;
        # either way it cannot be a live resource handle.
        return (test.id, REFINE_NOT_NONE), (test.id, REFINE_NONE)
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.left, ast.Name)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.Is):
            return (test.left.id, REFINE_NONE), (test.left.id, REFINE_NOT_NONE)
        if isinstance(test.ops[0], ast.IsNot):
            return (test.left.id, REFINE_NOT_NONE), (test.left.id, REFINE_NONE)
    return None, None


def _is_catch_all(handlers: list[ast.ExceptHandler]) -> bool:
    for handler in handlers:
        if handler.type is None:
            return True
        if isinstance(handler.type, ast.Name) and handler.type.id in _CATCH_ALL_NAMES:
            return True
        if (
            isinstance(handler.type, ast.Attribute)
            and handler.type.attr in _CATCH_ALL_NAMES
        ):
            return True
    return False


def _synthetic_assign(
    target: ast.expr, value: ast.expr, origin: ast.stmt, tag: str
) -> ast.stmt:
    """A location-preserving ``target = value`` stand-in statement."""
    stmt = ast.Assign(targets=[target], value=value)
    ast.copy_location(stmt, origin)
    ast.fix_missing_locations(stmt)
    setattr(stmt, tag, True)
    return stmt


def _synthetic_expr(value: ast.expr, origin: ast.stmt, tag: str | None = None) -> ast.stmt:
    stmt = ast.Expr(value=value)
    ast.copy_location(stmt, origin)
    ast.fix_missing_locations(stmt)
    if tag is not None:
        setattr(stmt, tag, True)
    return stmt


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------


class _Frame:
    __slots__ = ()


class _LoopFrame(_Frame):
    __slots__ = ("header", "after")

    def __init__(self, header: int, after: int) -> None:
        self.header = header
        self.after = after


class _FinallyFrame(_Frame):
    __slots__ = ("finalbody", "cache")

    def __init__(self, finalbody: list[ast.stmt]) -> None:
        self.finalbody = finalbody
        self.cache: dict[str, int] = {}


class _HandlerFrame(_Frame):
    __slots__ = ("entries", "catch_all", "pos", "_dispatch")

    def __init__(self, entries: list[int], catch_all: bool, pos: int) -> None:
        self.entries = entries
        self.catch_all = catch_all
        self.pos = pos
        self._dispatch: int | None = None

    def dispatch(self, builder: "_Builder") -> int:
        """The (lazily created) handler-dispatch block."""
        if self._dispatch is None:
            block = builder.cfg.new_block()
            self._dispatch = block
            for entry in self.entries:
                builder.cfg.add_edge(block, entry, kind=EXC)
            if not self.catch_all:
                builder.cfg.add_edge(
                    block, builder.resolve("raise", upto=self.pos), kind=EXC
                )
        return self._dispatch


class _Builder:
    """Lowers one function body into a :class:`CFG`."""

    def __init__(self, func: _FunctionDef) -> None:
        self.cfg = CFG(func)
        self.cfg.entry = self.cfg.new_block()
        self.cfg.exit = self.cfg.new_block()
        self.frames: list[_Frame] = []
        self.current: int | None = self.cfg.entry

    def build(self) -> CFG:
        self._stmts(self.cfg.func.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, self.cfg.exit)
        return self.cfg

    # -- plumbing -------------------------------------------------------

    def _block(self) -> int:
        if self.current is None:
            # Dead code still gets blocks (no predecessors) so rules can
            # at least see the statements.
            self.current = self.cfg.new_block()
        return self.current

    def _append(self, stmt: ast.stmt) -> int:
        """Append a non-raising statement to the current block."""
        block = self._block()
        self.cfg.blocks[block].stmts.append(stmt)
        return block

    def _append_raising(self, stmt: ast.stmt) -> int:
        """Give a possibly-raising statement its own block + exc edge."""
        block = self._block()
        if self.cfg.blocks[block].stmts:
            fresh = self.cfg.new_block()
            self.cfg.add_edge(block, fresh)
            block = fresh
        self.cfg.blocks[block].stmts.append(stmt)
        self.cfg.add_edge(block, self.resolve("raise"), kind=EXC)
        nxt = self.cfg.new_block()
        self.cfg.add_edge(block, nxt)
        self.current = nxt
        return block

    def _emit(self, stmt: ast.stmt) -> int:
        if stmt_can_raise(stmt):
            return self._append_raising(stmt)
        return self._append(stmt)

    def resolve(self, key: str, upto: int | None = None) -> int:
        """Destination block for exit kind ``key`` from the current nesting.

        ``key`` is ``"raise"``, ``"return"``, ``"break"`` or
        ``"continue"``; ``upto`` limits the frame search (used when
        propagating an exception past the handler frame that failed to
        catch it).  ``finally`` bodies are instantiated (once per frame
        and exit kind) along the way.
        """
        index = (len(self.frames) if upto is None else upto) - 1
        while index >= 0:
            frame = self.frames[index]
            if isinstance(frame, _FinallyFrame):
                if key not in frame.cache:
                    entry = self.cfg.new_block()
                    frame.cache[key] = entry
                    saved_frames = self.frames
                    saved_current = self.current
                    self.frames = list(self.frames[:index])
                    self.current = entry
                    self._stmts(frame.finalbody)
                    end = self.current
                    self.frames = saved_frames
                    self.current = saved_current
                    if end is not None:
                        self.cfg.add_edge(end, self.resolve(key, upto=index))
                return frame.cache[key]
            if isinstance(frame, _HandlerFrame) and key == "raise":
                return frame.dispatch(self)
            if isinstance(frame, _LoopFrame):
                if key == "break":
                    return frame.after
                if key == "continue":
                    return frame.header
            index -= 1
        if key in ("raise", "return"):
            return self.cfg.exit
        raise AssertionError(f"{key!r} outside any loop")  # pragma: no cover

    # -- statement dispatch --------------------------------------------

    def _stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if self.current is None and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # Unreachable code: park it in a floating block.
                self.current = self.cfg.new_block()
            if isinstance(stmt, (ast.Return,)):
                self._terminator(stmt, "return")
            elif isinstance(stmt, ast.Raise):
                self._terminator(stmt, "raise")
            elif isinstance(stmt, ast.Break):
                self._terminator(stmt, "break")
            elif isinstance(stmt, ast.Continue):
                self._terminator(stmt, "continue")
            elif isinstance(stmt, ast.If):
                self._if(stmt)
            elif isinstance(stmt, (ast.While,)):
                self._while(stmt)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._for(stmt)
            elif isinstance(stmt, ast.Try):
                self._try(stmt)
            elif _is_try_star(stmt):
                self._try(stmt)  # type: ignore[arg-type]
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._with(stmt)
            elif isinstance(stmt, ast.Match):
                self._match(stmt)
            else:
                self._emit(stmt)

    def _terminator(self, stmt: ast.stmt, key: str) -> None:
        block = self._block()
        if stmt_can_raise(stmt):
            # e.g. ``return f(x)`` -- the call may raise before the
            # return transfers control.  Keep the statement alone in its
            # block so the exc edge carries the pre-statement fact.
            if self.cfg.blocks[block].stmts:
                fresh = self.cfg.new_block()
                self.cfg.add_edge(block, fresh)
                block = fresh
            self.cfg.blocks[block].stmts.append(stmt)
            self.cfg.add_edge(block, self.resolve("raise"), kind=EXC)
        else:
            self.cfg.blocks[block].stmts.append(stmt)
        self.cfg.add_edge(block, self.resolve(key))
        self.current = None

    def _branch_source(self, test: ast.expr, origin: ast.stmt) -> int:
        """Emit the test expression; return the block branches leave from."""
        stmt = _synthetic_expr(test, origin)
        if stmt_can_raise(stmt):
            return self._emit_test(stmt)
        return self._append(stmt)

    def _emit_test(self, stmt: ast.stmt) -> int:
        """Raising test: own block with exc edge; branches leave from it."""
        block = self._block()
        if self.cfg.blocks[block].stmts:
            fresh = self.cfg.new_block()
            self.cfg.add_edge(block, fresh)
            block = fresh
        self.cfg.blocks[block].stmts.append(stmt)
        self.cfg.add_edge(block, self.resolve("raise"), kind=EXC)
        self.current = block
        return block

    def _if(self, node: ast.If) -> None:
        source = self._branch_source(node.test, node)
        ref_true, ref_false = _branch_refinements(node.test)
        const = _const_truth(node.test)
        after = self.cfg.new_block()

        ends: list[int] = []
        if const is not False:
            then_entry = self.cfg.new_block()
            self.cfg.add_edge(source, then_entry, refine=ref_true)
            self.current = then_entry
            self._stmts(node.body)
            if self.current is not None:
                ends.append(self.current)
        if const is not True:
            if node.orelse:
                else_entry = self.cfg.new_block()
                self.cfg.add_edge(source, else_entry, refine=ref_false)
                self.current = else_entry
                self._stmts(node.orelse)
                if self.current is not None:
                    ends.append(self.current)
            else:
                self.cfg.add_edge(source, after, refine=ref_false)
                ends.append(-1)  # placeholder: after already wired
        reachable = False
        for end in ends:
            reachable = True
            if end >= 0:
                self.cfg.add_edge(end, after)
        self.current = after if reachable else None
        if not reachable:
            # Both arms diverged; `after` stays an unreachable island.
            self.current = None

    def _while(self, node: ast.While) -> None:
        header = self.cfg.new_block()
        if self.current is not None:
            self.cfg.add_edge(self.current, header)
        self.current = header
        source = self._branch_source(node.test, node)
        ref_true, ref_false = _branch_refinements(node.test)
        const = _const_truth(node.test)
        after = self.cfg.new_block()

        body_entry = self.cfg.new_block()
        if const is not False:
            self.cfg.add_edge(source, body_entry, refine=ref_true)
        if const is not True:
            if node.orelse:
                else_entry = self.cfg.new_block()
                self.cfg.add_edge(source, else_entry, refine=ref_false)
                self.current = else_entry
                self._stmts(node.orelse)
                if self.current is not None:
                    self.cfg.add_edge(self.current, after)
            else:
                self.cfg.add_edge(source, after, refine=ref_false)

        self.frames.append(_LoopFrame(header=header, after=after))
        self.current = body_entry
        self._stmts(node.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, header)
        self.frames.pop()
        self.current = after

    def _for(self, node: ast.For | ast.AsyncFor) -> None:
        header = self.cfg.new_block()
        if self.current is not None:
            self.cfg.add_edge(self.current, header)
        # The header evaluates the iterable / advances the iterator and
        # rebinds the target on every entry.
        assign = _synthetic_assign(node.target, node.iter, node, "_geacc_for")
        self.current = header
        if stmt_can_raise(assign):
            source = self._emit_test(assign)
        else:
            source = self._append(assign)
        after = self.cfg.new_block()
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(source, body_entry)
        if node.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.add_edge(source, else_entry)
            self.current = else_entry
            self._stmts(node.orelse)
            if self.current is not None:
                self.cfg.add_edge(self.current, after)
        else:
            self.cfg.add_edge(source, after)

        self.frames.append(_LoopFrame(header=header, after=after))
        self.current = body_entry
        self._stmts(node.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, header)
        self.frames.pop()
        self.current = after

    def _try(self, node: ast.Try) -> None:
        finally_frame: _FinallyFrame | None = None
        if node.finalbody:
            finally_frame = _FinallyFrame(node.finalbody)
            self.frames.append(finally_frame)

        handler_frame: _HandlerFrame | None = None
        entries: list[int] = []
        if node.handlers:
            entries = [self.cfg.new_block() for _ in node.handlers]
            handler_frame = _HandlerFrame(
                entries, _is_catch_all(node.handlers), pos=len(self.frames)
            )
            self.frames.append(handler_frame)

        self._stmts(node.body)
        if handler_frame is not None:
            self.frames.pop()
        if node.orelse:
            # Runs only after the body completed normally; its exceptions
            # skip this try's handlers (but do run the finally).
            if self.current is not None:
                self._stmts(node.orelse)
        normal_end = self.current

        handler_ends: list[int] = []
        for handler, entry in zip(node.handlers, entries):
            self.current = entry
            self._stmts(handler.body)
            if self.current is not None:
                handler_ends.append(self.current)

        ends = [e for e in [normal_end, *handler_ends] if e is not None]
        if finally_frame is not None:
            self.frames.pop()
            if ends:
                fin_entry = self.cfg.new_block()
                for end in ends:
                    self.cfg.add_edge(end, fin_entry)
                self.current = fin_entry
                self._stmts(node.finalbody)
                # current (possibly None if the finally diverges) flows on.
            else:
                self.current = None
        else:
            if not ends:
                self.current = None
            elif len(ends) == 1:
                self.current = ends[0]
            else:
                join = self.cfg.new_block()
                for end in ends:
                    self.cfg.add_edge(end, join)
                self.current = join

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                stmt = _synthetic_assign(
                    item.optional_vars, item.context_expr, node, "_geacc_with"
                )
            else:
                stmt = _synthetic_expr(item.context_expr, node, "_geacc_with")
            self._emit(stmt)
        self._stmts(node.body)

    def _match(self, node: ast.Match) -> None:
        source = self._branch_source(node.subject, node)
        after = self.cfg.new_block()
        reachable = False
        for case in node.cases:
            entry = self.cfg.new_block()
            self.cfg.add_edge(source, entry)
            self.current = entry
            self._stmts(case.body)
            if self.current is not None:
                self.cfg.add_edge(self.current, after)
                reachable = True
        # No case may match: fall through.
        self.cfg.add_edge(source, after)
        self.current = after
        del reachable


def _is_try_star(stmt: ast.stmt) -> bool:
    try_star = getattr(ast, "TryStar", None)
    return try_star is not None and isinstance(stmt, try_star)


def build_cfg(func: _FunctionDef) -> CFG:
    """Build the CFG of one function definition."""
    return _Builder(func).build()


def function_cfgs(tree: ast.AST) -> list[CFG]:
    """CFGs for every function (and method) defined anywhere in ``tree``."""
    return [
        build_cfg(node)
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
