"""Diagnostic records produced by :mod:`repro.analysis` rules.

A diagnostic pins one finding to a ``path:line:col`` location and names
the rule that produced it.  Rendering is deliberately ``grep``-friendly
(one line per finding) so editors and CI logs can jump to the site.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding.

    Ordering/equality cover every field, so sorting groups findings by
    file and line while de-duplication keeps distinct rules that fire on
    the same location.

    Attributes:
        path: Display path of the offending file (as given on the
            command line, joined with the in-tree relative path).
        line: 1-based line of the finding.
        col: 0-based column of the finding (AST convention).
        rule_id: Short identifier, e.g. ``R1`` .. ``R13`` (or ``E0``
            for files the engine could not parse).
        message: Human-readable explanation, including the suggested
            fix where one exists.
        suppressed: True when an inline ``# geacc-lint: disable``
            directive silenced this finding. Suppressed diagnostics are
            normally dropped by the engine; with
            ``include_suppressed=True`` they are kept (marked) so
            machine consumers can audit what the directives hide, but
            they never affect the exit code.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    suppressed: bool = False

    def render(self) -> str:
        """Format as ``path:line:col: RULE message``."""
        note = "  [suppressed]" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}{note}"
        )

    def to_json(self) -> dict[str, object]:
        """A flat JSON-ready mapping (one object per finding).

        Keys are stable API: ``rule``, ``path``, ``line``, ``col``,
        ``message``, ``suppressed``.
        """
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }
