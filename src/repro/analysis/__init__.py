"""GEACC-aware static analysis (``geacc-lint``).

An AST-based linter with repository-specific rules guarding the
invariants the reproduction's numbers depend on:

* **R1 determinism** -- no unseeded / global-state randomness; thread
  an explicit ``numpy.random.Generator``.
* **R2 float discipline** -- no exact ``==``/``!=`` on
  similarity/objective floats in ``core/``/``flow/``; use
  :mod:`repro.core.numeric`.
* **R3 solver-registry completeness** -- every concrete solver is
  registered, imported, and exported.
* **R4 ordering safety** -- no set/dict-values iteration feeding heap
  pushes or keyed tie-breaks.
* **R5 API hygiene** -- no mutable default arguments or bare excepts;
  public ``repro.core`` functions fully annotated.
* **R6 time API** -- no wall-clock ``time.time()``; budget deadlines
  use ``time.monotonic()``, durations ``time.perf_counter()``.

Architecture: one rule = one class (:mod:`repro.analysis.rules`),
registered in a table (:mod:`repro.analysis.registry`), driven by a
small engine (:mod:`repro.analysis.engine`) with inline suppression
support (:mod:`repro.analysis.suppress`).  See
``docs/static-analysis.md`` for the rule catalogue and rationale.
"""

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ParsedModule, Project, lint_project, parse_project, run_lint
from repro.analysis.registry import RULES, Rule, load_rules, register_rule

__all__ = [
    "Diagnostic",
    "ParsedModule",
    "Project",
    "RULES",
    "Rule",
    "lint_project",
    "load_rules",
    "parse_project",
    "register_rule",
    "run_lint",
]
