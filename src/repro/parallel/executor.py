"""The process-pool sweep executor.

:func:`run_cell_groups` fans (grid point, seed, solver) cells out to a
pool of worker processes while keeping every guarantee of the serial
sweep path (:mod:`repro.experiments.runner`):

* **the parent is the sole checkpoint writer** -- workers return
  finished :class:`~repro.experiments.runner.CellResult`\\ s over the
  pool's result channel and the parent appends them (via ``on_cell``)
  to the fsynced JSONL checkpoint, so kill+``--resume`` semantics are
  identical to a serial run;
* **determinism regardless of completion order** -- cells carry stable
  :func:`~repro.experiments.runner.cell_key` identities and the caller
  merges the returned ``{key: CellResult}`` mapping in grid order, so
  only the *file line order* of the checkpoint varies with scheduling
  (canonical sort makes jobs=1 and jobs=N byte-identical);
* **one instance per (grid point, seed) group** -- the parent
  materialises the instance (and its similarity matrix) once, publishes
  it through :mod:`repro.parallel.sharedmem`, and workers rehydrate
  zero-copy views; where shared memory is unavailable each worker falls
  back to regenerating the instance from the factory;
* **global budget** -- a :class:`~repro.robustness.budget.Budget`
  deadline is threaded into workers as a shrinking per-cell timeout,
  and once it expires the parent stops submitting and terminates the
  pool, cancelling every outstanding cell.

Workers inherit the instance factory through a fork-context pool
initializer, so the lambdas the figure drivers use never need to
pickle; only small :class:`_CellTask` descriptors cross the process
boundary. On platforms without ``fork`` a spawn pool is used instead,
which *does* require a picklable factory -- checked up front, raising
:class:`ParallelUnavailableError` so callers can fall back to serial.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from queue import Empty, SimpleQueue
from typing import Any

from repro.core.model import Instance
from repro.experiments.runner import CellResult, run_cell, want_shared_sims
from repro.parallel.sharedmem import SharedInstanceArchive, SharedInstanceHandle
from repro.robustness.budget import Budget
from repro.robustness.outcome import FailureRecord, Outcome, is_transient

#: One (grid point, seed) group of cells: all solvers share one instance.
CellGroup = tuple[object, int, tuple[str, ...]]


class ParallelUnavailableError(RuntimeError):
    """Process-level parallelism cannot run in this configuration.

    Raised up front (before any work starts) so callers can degrade to
    the serial sweep path instead of failing halfway through a grid.
    """


def default_jobs() -> int:
    """Worker count used for ``--jobs 0`` ("all cores")."""
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-worker state installed by the pool initializer. A fork-context
#: pool inherits the factory (closures and all) through the initializer
#: arguments at fork time; nothing here crosses a pickle boundary except
#: under a spawn context, where the factory's picklability was verified
#: before the pool was built.
_WORKER_STATE: dict[str, Any] | None = None


@dataclass(frozen=True)
class _CellTask:
    """What one cell needs beyond the worker's initializer state."""

    group_id: int
    x: object
    seed: int
    solver: str
    handle: SharedInstanceHandle | None
    timeout: float | None


def _init_worker(
    factory: Callable[[object, int], Instance],
    memory: bool,
    solver_kwargs: dict[str, dict],
    node_limit: int | None,
    max_attempts: int,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {
        "factory": factory,
        "memory": memory,
        "solver_kwargs": solver_kwargs,
        "node_limit": node_limit,
        "max_attempts": max_attempts,
    }


def _run_task(task: _CellTask) -> tuple[int, CellResult]:
    """Run one cell in a worker; returns (group id, finished cell)."""
    state = _WORKER_STATE
    assert state is not None, "worker used before _init_worker ran"
    lease = None
    shared: Instance | None = None
    if task.handle is not None:
        try:
            lease = task.handle.attach()
            shared = lease.instance
        except Exception:
            # Segment vanished or mapping failed: regenerate locally.
            lease = None
            shared = None
    if shared is None:
        # No shared memory: materialise locally under the same policy,
        # so results cannot depend on whether sharing worked. A factory
        # failure is left for run_cell, which classifies and retries it.
        try:
            shared = state["factory"](task.x, task.seed)
            if want_shared_sims(shared):
                shared.sims
        except Exception:
            shared = None
    try:
        cell = run_cell(
            state["factory"],
            task.x,
            task.seed,
            task.solver,
            memory=state["memory"],
            solver_kwargs=state["solver_kwargs"].get(task.solver),
            timeout=task.timeout,
            node_limit=state["node_limit"],
            max_attempts=state["max_attempts"],
            instance=shared,
        )
    finally:
        if lease is not None:
            lease.close()
    return task.group_id, cell


def _crash_cell(task: _CellTask, exc: BaseException) -> CellResult:
    """A synthetic failed cell for a worker that died mid-cell."""
    return CellResult(
        x=task.x,
        seed=task.seed,
        solver=task.solver,
        status="failed",
        outcome=Outcome.FAILED.value,
        max_sum=0.0,
        seconds=0.0,
        peak_mb=0.0,
        n_pairs=0.0,
        attempts=1,
        failures=(
            FailureRecord(
                solver=task.solver,
                error_type=type(exc).__name__,
                message=f"worker failed: {exc}",
                transient=is_transient(exc),
                attempt=0,
            ),
        ),
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _make_context(instance_factory: Callable[[object, int], Instance]):  # type: ignore[no-untyped-def]
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    # Spawn re-imports and unpickles the initializer arguments in each
    # worker, so the factory must survive a pickle round-trip. Verify
    # now: failing before any cell ran lets the caller go serial.
    try:
        pickle.dumps(instance_factory)
    except Exception as exc:
        raise ParallelUnavailableError(
            "no fork start method and the instance factory is not "
            f"picklable for spawn workers: {exc}"
        ) from exc
    return multiprocessing.get_context("spawn")


def run_cell_groups(
    instance_factory: Callable[[object, int], Instance],
    groups: Sequence[CellGroup],
    *,
    jobs: int,
    memory: bool = True,
    solver_kwargs: dict[str, dict] | None = None,
    timeout: float | None = None,
    node_limit: int | None = None,
    max_attempts: int = 2,
    budget: Budget | None = None,
    on_cell: Callable[[CellResult], None] | None = None,
    share_memory: bool = True,
) -> dict[str, CellResult]:
    """Run every cell of ``groups`` on a worker pool.

    Args:
        groups: ``(x, seed, solvers)`` triples; the solvers of one group
            share a single parent-materialised instance (published via
            shared memory when possible).
        jobs: Worker process count; ``0`` means :func:`default_jobs`.
        budget: Optional sweep-wide budget. Its remaining deadline caps
            every cell's timeout at submission time, and on exhaustion
            the parent cancels all outstanding cells -- those cells are
            simply absent from the returned mapping.
        on_cell: Called in the parent for each finished cell, in
            completion order -- the checkpoint-append hook. The parent
            stays the sole writer.

    Returns:
        Finished cells keyed by :func:`~repro.experiments.runner.
        cell_key`. Completion order does not affect the mapping.

    Raises:
        ParallelUnavailableError: This platform cannot run the pool
            (no fork, and the factory cannot be pickled for spawn).
    """
    if jobs == 0:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or 0 for all cores), got {jobs}")
    solver_kwargs = solver_kwargs or {}
    groups = list(groups)
    total = sum(len(solvers) for _, _, solvers in groups)
    results: dict[str, CellResult] = {}
    if total == 0:
        return results
    if budget is not None:
        budget.start()

    ctx = _make_context(instance_factory)
    done: SimpleQueue = SimpleQueue()
    #: group id -> [archive, cells still outstanding]
    archives: dict[int, list[Any]] = {}

    def _effective_timeout() -> float | None:
        if budget is None or budget.deadline is None:
            return timeout
        remaining = budget.remaining_seconds() or 0.0
        return remaining if timeout is None else min(timeout, remaining)

    def _expired() -> bool:
        return budget is not None and budget.expired()

    def _retire_archive(group_id: int) -> None:
        entry = archives.get(group_id)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            archive = entry[0]
            if archive is not None:
                archive.destroy()
            del archives[group_id]

    pool = ctx.Pool(
        processes=jobs,
        initializer=_init_worker,
        initargs=(instance_factory, memory, solver_kwargs, node_limit, max_attempts),
    )
    completed = 0
    submitted = 0
    next_group = 0
    # Keep roughly two cells per worker in flight: enough to hide the
    # result-drain latency, small enough that at most a handful of
    # shared-memory segments exist at once.
    window = max(2 * jobs, 2)
    try:
        while completed < total:
            while (
                next_group < len(groups)
                and submitted - completed < window
                and not _expired()
            ):
                group_id = next_group
                next_group += 1
                x, seed, solvers = groups[group_id]
                handle = None
                archive = None
                if share_memory:
                    try:
                        instance = instance_factory(x, seed)
                    except Exception:
                        # Workers re-run the factory per cell and give the
                        # failure its full classify/retry treatment there.
                        instance = None
                    if instance is not None:
                        archive = SharedInstanceArchive.from_instance(
                            instance, include_sims=want_shared_sims(instance)
                        )
                        if archive is not None:
                            handle = archive.handle
                archives[group_id] = [archive, len(solvers)]
                for solver in solvers:
                    task = _CellTask(
                        group_id=group_id,
                        x=x,
                        seed=seed,
                        solver=solver,
                        handle=handle,
                        timeout=_effective_timeout(),
                    )
                    pool.apply_async(
                        _run_task,
                        (task,),
                        callback=lambda payload: done.put(("ok", payload)),
                        error_callback=lambda exc, task=task: done.put(
                            ("error", (task, exc))
                        ),
                    )
                    submitted += 1
            if _expired():
                # Deadline gone: cancel everything still outstanding.
                # Finished-but-undrained results are lost with them --
                # their cells re-run on resume, which is correct.
                assert budget is not None
                budget.mark_exhausted("sweep deadline exhausted")
                pool.terminate()
                break
            try:
                kind, payload = done.get(timeout=0.05)
            except Empty:
                continue
            if kind == "ok":
                group_id, cell = payload
            else:
                task, exc = payload
                group_id, cell = task.group_id, _crash_cell(task, exc)
            completed += 1
            results[cell.key()] = cell
            if on_cell is not None:
                on_cell(cell)
            _retire_archive(group_id)
        else:
            pool.close()
        pool.join()
    finally:
        pool.terminate()
        for entry in archives.values():
            if entry[0] is not None:
                entry[0].destroy()
        archives.clear()
    return results
