"""Zero-copy instance sharing via ``multiprocessing.shared_memory``.

A sweep cell needs the instance's numeric payload -- the ``(|V|, |U|)``
similarity matrix above all -- and re-materialising it per (seed,
solver) cell is the single largest redundant cost of a parallel sweep.
:class:`SharedInstanceArchive` packs an :class:`~repro.core.model.
Instance`'s arrays into **one** shared-memory segment; the picklable
:class:`SharedInstanceHandle` it hands out is a few hundred bytes, and
:func:`SharedInstanceHandle.attach` rebuilds the instance in a worker
as *views* over the mapped segment -- zero copies of the big arrays.

Lifecycle contract (documented in ``docs/performance.md``):

* the **parent** creates the segment (one per (grid point, seed) cell
  group) and is the only process that ever ``unlink``\\ s it -- after
  the last cell of the group returned, or in the executor's teardown;
* each **worker** attaches per cell and ``close``\\ s its mapping when
  the cell finishes (:class:`SharedInstanceLease` is a context
  manager); workers never unlink;
* platforms without POSIX shared memory (or with ``/dev/shm`` mounted
  too small) make :meth:`SharedInstanceArchive.from_instance` return
  ``None``, and callers fall back to per-worker materialisation.

Rehydrated arrays are marked read-only: solvers share one physical
matrix, so an accidental in-place write in one worker would corrupt
every concurrently running cell.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance

#: Field names an archive may carry, in fixed packing order.
_FIELDS = (
    "event_capacities",
    "user_capacities",
    "conflict_pairs",
    "event_attributes",
    "user_attributes",
    "sims",
)


#: Supported similarity-matrix layouts: ``rows`` keeps event rows
#: contiguous (C order; the solvers' row-tile pulls), ``cols`` keeps user
#: columns contiguous (Fortran order; column-heavy consumers like
#: Greedy-GEACC's user streams). Values are identical either way -- only
#: the strides of the zero-copy views change.
SIMS_LAYOUTS = ("rows", "cols")


@dataclass(frozen=True)
class _ArraySpec:
    """Placement of one array inside the shared segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int
    order: str = "C"

    @property
    def nbytes(self) -> int:
        count = 1
        for extent in self.shape:
            count *= extent
        return count * np.dtype(self.dtype).itemsize


def _attach_segment(name: str, in_creator: bool):  # type: ignore[no-untyped-def]
    """Open an existing segment without resource-tracker ownership.

    Before Python 3.13 an attaching process registers the segment with
    its resource tracker, which then complains (and double-unlinks) at
    exit because the *parent* owns the unlink. Use ``track=False``
    where available and fall back to unregistering by hand -- except in
    the creating process itself, where the tracker entry belongs to the
    creation and ``unlink`` will retire it; unregistering there would
    leave the eventual unlink without an entry to remove.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        segment = shared_memory.SharedMemory(name=name)
        if not in_creator:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:  # best effort; a spurious warning is harmless
                pass
        return segment


@dataclass(frozen=True)
class SharedInstanceHandle:
    """Picklable description of an archived instance.

    Everything a worker needs to rebuild the instance: the segment name,
    where each array lives inside it, and the scalar metadata
    (``t``, ``metric``) that is not worth a buffer.
    """

    segment_name: str
    n_events: int
    n_users: int
    t: float
    metric: str
    specs: tuple[tuple[str, _ArraySpec], ...]
    creator_pid: int = field(default=-1)

    def attach(self) -> "SharedInstanceLease":
        """Map the segment and rebuild the instance (zero-copy views)."""
        segment = _attach_segment(
            self.segment_name, in_creator=os.getpid() == self.creator_pid
        )
        return SharedInstanceLease(self, segment)


class SharedInstanceLease:
    """One worker's mapping of an archived instance.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory`
    mapping alive for as long as the rebuilt :attr:`instance` is in
    use; :meth:`close` drops the mapping (never the segment itself --
    unlinking is the parent's job).
    """

    def __init__(self, handle: SharedInstanceHandle, segment) -> None:  # type: ignore[no-untyped-def]
        self._segment = segment
        self._handle = handle
        self.instance = _rehydrate(handle, segment)

    def __enter__(self) -> Instance:
        return self.instance

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._segment is not None:
            # Views over the buffer must be released before close();
            # dropping the Instance reference is the caller's side.
            self.instance = None  # type: ignore[assignment]
            self._segment.close()
            self._segment = None


def _view(segment, spec: _ArraySpec, writeable: bool = False) -> np.ndarray:  # type: ignore[no-untyped-def]
    array: np.ndarray = np.ndarray(
        spec.shape,
        dtype=np.dtype(spec.dtype),
        buffer=segment.buf,
        offset=spec.offset,
        order=spec.order,
    )
    array.flags.writeable = writeable
    return array


def _rehydrate(handle: SharedInstanceHandle, segment) -> Instance:  # type: ignore[no-untyped-def]
    specs = dict(handle.specs)
    arrays = {name: _view(segment, spec) for name, spec in specs.items()}
    pairs = arrays["conflict_pairs"]
    conflicts = ConflictGraph(
        handle.n_events, ((int(i), int(j)) for i, j in pairs)
    )
    return Instance(
        arrays["event_capacities"],
        arrays["user_capacities"],
        conflicts,
        sims=arrays.get("sims"),
        event_attributes=arrays.get("event_attributes"),
        user_attributes=arrays.get("user_attributes"),
        t=handle.t,
        metric=handle.metric,
        validate=False,  # the parent validated when it built the instance
    )


class SharedInstanceArchive:
    """Parent-side owner of one instance's shared-memory segment."""

    def __init__(self, handle: SharedInstanceHandle, segment) -> None:  # type: ignore[no-untyped-def]
        self.handle = handle
        self._segment = segment

    @classmethod
    def from_instance(
        cls,
        instance: Instance,
        include_sims: bool = True,
        sims_layout: str = "rows",
    ) -> "SharedInstanceArchive | None":
        """Pack ``instance`` into a fresh segment; None when unsupported.

        Args:
            include_sims: Also materialise (via :attr:`Instance.sims`,
                once, in the parent) and pack the similarity matrix.
                Pass False for scalability-scale instances that solvers
                stream through matrix-free index providers.
            sims_layout: One of :data:`SIMS_LAYOUTS` -- ``rows`` packs
                the matrix row-major (event tiles contiguous), ``cols``
                column-major (user columns contiguous). Rehydrated values
                are bit-identical either way.
        """
        if sims_layout not in SIMS_LAYOUTS:
            raise ValueError(
                f"unknown sims_layout {sims_layout!r}; expected one of {SIMS_LAYOUTS}"
            )
        arrays: dict[str, np.ndarray] = {
            "event_capacities": np.ascontiguousarray(
                instance.event_capacities, dtype=np.int64
            ),
            "user_capacities": np.ascontiguousarray(
                instance.user_capacities, dtype=np.int64
            ),
            "conflict_pairs": _conflict_array(instance.conflicts),
        }
        if instance.event_attributes is not None:
            arrays["event_attributes"] = np.ascontiguousarray(
                instance.event_attributes, dtype=np.float64
            )
        if instance.user_attributes is not None:
            arrays["user_attributes"] = np.ascontiguousarray(
                instance.user_attributes, dtype=np.float64
            )
        if include_sims or instance.has_matrix:
            pack = (
                np.ascontiguousarray if sims_layout == "rows" else np.asfortranarray
            )
            arrays["sims"] = pack(instance.sims, dtype=np.float64)

        specs: list[tuple[str, _ArraySpec]] = []
        offset = 0
        for name in _FIELDS:
            if name not in arrays:
                continue
            array = arrays[name]
            order = "F" if array.flags.f_contiguous and not array.flags.c_contiguous else "C"
            spec = _ArraySpec(
                dtype=array.dtype.str, shape=array.shape, offset=offset, order=order
            )
            specs.append((name, spec))
            offset += spec.nbytes

        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        except (ImportError, OSError, ValueError):
            return None  # no POSIX shm here; callers materialise per worker

        # Everything between acquisition and the hand-off to the archive
        # lives under the cleanup guard: a raise anywhere in the window
        # (view fill, handle construction) must retire the segment, or
        # it stays pinned in /dev/shm until reboot (R10).
        try:
            for name, spec in specs:
                _view(segment, spec, writeable=True)[...] = arrays[name]
            handle = SharedInstanceHandle(
                segment_name=segment.name,
                n_events=instance.n_events,
                n_users=instance.n_users,
                t=instance.t,
                metric=instance.metric,
                specs=tuple(specs),
                creator_pid=os.getpid(),
            )
            return cls(handle, segment)
        except BaseException:
            segment.close()
            segment.unlink()
            raise

    def destroy(self) -> None:
        """Close the parent mapping and unlink the segment (idempotent)."""
        if self._segment is not None:
            self._segment.close()
            try:
                self._segment.unlink()
            except FileNotFoundError:  # already gone (e.g. double teardown)
                pass
            self._segment = None


def _conflict_array(conflicts: ConflictGraph) -> np.ndarray:
    """The conflict set CF as a dense ``(|CF|, 2)`` int64 array."""
    pairs = sorted(conflicts.pairs)
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)
