"""The sanctioned process-level parallelism layer.

Everything in this repository that fans work out to multiple processes
goes through this package -- ``geacc-lint`` rule R7 bans naked
``multiprocessing.Pool`` / ``fork`` start-method selection everywhere
else, so budgets (:mod:`repro.robustness.budget`) and the crash-safe
sweep checkpoint (:mod:`repro.experiments.runner`) cannot be bypassed
by ad-hoc pools.

Three public pieces:

* :mod:`repro.parallel.sharedmem` -- zero-copy sharing of an
  :class:`~repro.core.model.Instance`'s numeric payload (similarity
  matrix, attributes, capacities, conflict edges) across worker
  processes via ``multiprocessing.shared_memory``.
* :mod:`repro.parallel.executor` -- the process-pool sweep executor:
  fans (grid point, seed, solver) cells out to workers, keeps the
  *parent* the sole writer of the fsynced JSONL checkpoint, and cancels
  outstanding cells when a global :class:`~repro.robustness.budget.
  Budget` deadline is exhausted.
* :mod:`repro.parallel.maplib` -- an order-preserving ``parallel_map``
  for coarse-grained picklable tasks that need the same fork-preferred,
  parent-aggregates conventions without the sweep machinery (used by
  ``geacc-lint --jobs``).
"""

from repro.parallel.executor import (
    ParallelUnavailableError,
    default_jobs,
    run_cell_groups,
)
from repro.parallel.maplib import parallel_map, thread_map
from repro.parallel.shardsolve import solve_shard_batch
from repro.parallel.sharedmem import (
    SharedInstanceArchive,
    SharedInstanceHandle,
    SharedInstanceLease,
)

__all__ = [
    "ParallelUnavailableError",
    "SharedInstanceArchive",
    "SharedInstanceHandle",
    "SharedInstanceLease",
    "default_jobs",
    "parallel_map",
    "run_cell_groups",
    "solve_shard_batch",
    "thread_map",
]
