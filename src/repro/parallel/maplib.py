"""Order-preserving parallel map over picklable tasks.

The sweep executor (:mod:`repro.parallel.executor`) is built around
instance sharing, budgets and checkpoint journaling; some callers just
need a plain "run *f* over these items in N processes" primitive with
the same process conventions:

* **fork-preferred start method** -- the callable (closures and all) is
  inherited at fork time; under spawn its picklability is verified up
  front so failure happens before any work starts;
* **parent-only aggregation** -- workers only *return* values over the
  pool's result channel, they never write shared state, so callers keep
  the "parent is the sole writer" property of the serial path;
* **deterministic ordering** -- results come back in input order
  regardless of worker scheduling, so ``jobs=1`` and ``jobs=N`` are
  indistinguishable to the caller.

``geacc-lint --jobs`` uses this to fan per-file parsing and per-module
rule checks out across cores.
"""

from __future__ import annotations

import pickle
from collections.abc import Callable, Iterable
from typing import TypeVar

from repro.parallel.executor import ParallelUnavailableError, default_jobs

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def _make_context(func: Callable[..., object]):  # type: ignore[no-untyped-def]
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    # Spawn re-imports and unpickles the mapped callable in each worker;
    # verify that round-trip now so callers can degrade to serial before
    # any item has been processed.
    try:
        pickle.dumps(func)
    except Exception as exc:
        raise ParallelUnavailableError(
            "no fork start method and the mapped callable is not "
            f"picklable for spawn workers: {exc}"
        ) from exc
    return multiprocessing.get_context("spawn")


def parallel_map(
    func: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    jobs: int,
) -> list[ResultT]:
    """Apply ``func`` to every item across ``jobs`` worker processes.

    Args:
        func: A picklable callable (module-level function or a
            :func:`functools.partial` of one). Must be pure with respect
            to shared state: its only output channel is its return
            value.
        items: The work items; materialised up front. Items and results
            cross the process boundary, so both must pickle.
        jobs: Worker count. ``0`` means all cores
            (:func:`~repro.parallel.executor.default_jobs`); ``1`` (or a
            single item) runs serially in-process with no pool at all.

    Returns:
        The results in input order, exactly as ``[func(i) for i in
        items]`` would produce.

    Raises:
        ParallelUnavailableError: No usable start method for this
            callable (no ``fork``, and it cannot be pickled for
            ``spawn``). Raised before any item runs, so callers can
            fall back to the serial path.
        ValueError: ``jobs`` is negative.
    """
    work = list(items)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(work) <= 1:
        return [func(item) for item in work]
    ctx = _make_context(func)
    # Coarse chunks amortise per-task pickling without starving workers.
    chunksize = max(1, len(work) // (jobs * 4))
    with ctx.Pool(processes=min(jobs, len(work))) as pool:
        return pool.map(func, work, chunksize=chunksize)


def thread_map(
    func: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    jobs: int = 0,
) -> list[ResultT]:
    """Apply ``func`` to every item across ``jobs`` *threads*, in order.

    The in-process sibling of :func:`parallel_map` for work that must
    share mutable parent state (shard services, journals, sockets) and
    is either I/O-bound or releases the GIL. Nothing is pickled and no
    processes are forked, so arbitrary closures are fine. ``jobs=0``
    sizes the pool to all cores; ``jobs<=1`` or a single item degrades
    to a plain serial loop. The first exception (in input order) is
    re-raised after all threads finish, so no thread is abandoned
    mid-mutation.

    The shard coordinator fans per-shard recovery and drains through
    this so one slow shard overlaps the others instead of serialising
    behind them.
    """
    work = list(items)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(work) <= 1:
        return [func(item) for item in work]
    import threading

    results: list[ResultT | None] = [None] * len(work)
    errors: list[Exception | None] = [None] * len(work)
    cursor_lock = threading.Lock()
    cursor = 0

    def _worker() -> None:
        nonlocal cursor
        while True:
            with cursor_lock:
                index = cursor
                if index >= len(work):
                    return
                cursor += 1
            try:
                results[index] = func(work[index])
            except Exception as exc:  # re-raised in the parent below
                errors[index] = exc

    threads = [
        threading.Thread(target=_worker, name=f"geacc-thread-map-{i}")
        for i in range(min(jobs, len(work)))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for error in errors:
        if error is not None:
            raise error
    return [result for result in results]  # type: ignore[misc]
