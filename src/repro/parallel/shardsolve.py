"""Zero-copy batch solving for shard workers.

Each shard's :class:`~repro.service.engine.MicroBatchEngine` re-solves
its open remainder independently, so with N shards there are N solver
call sites running concurrently. :func:`solve_shard_batch` routes those
solves through the :class:`~repro.parallel.sharedmem.
SharedInstanceArchive`: the sub-instance's numeric payload (capacities,
conflict pairs, similarity matrix) is packed into one shared-memory
segment and the ladder solves over zero-copy views of it rather than
per-solver copies of the parent arrays -- the same lifecycle the sweep
executor's workers use, exercised here from shard engine threads.

When shared memory is unavailable (no ``/dev/shm``, payload too small
to be worth a segment) the function degrades to a plain in-process
:func:`~repro.robustness.harness.solve_with_ladder`; results are
identical either way, which ``tests/parallel/test_shardsolve.py`` pins.
"""

from __future__ import annotations

from collections.abc import Sequence

import dataclasses

from repro.core.model import Arrangement, Instance
from repro.parallel.sharedmem import SharedInstanceArchive
from repro.robustness.harness import SolveResult, solve_with_ladder


def solve_shard_batch(
    instance: Instance,
    ladder: Sequence[object],
    *,
    timeout: float | None = None,
) -> SolveResult:
    """Run the degradation ladder over a shared-memory view of ``instance``.

    Packs the instance into one shm segment, attaches a zero-copy lease,
    solves, and destroys the segment -- create/attach/close/unlink along
    the audited :mod:`repro.parallel.sharedmem` lifecycle so crash-kill
    tests never leak segments. Falls back to solving the in-process
    instance when archiving is unavailable.
    """
    archive = SharedInstanceArchive.from_instance(instance)
    if archive is None:
        return solve_with_ladder(instance, ladder, timeout=timeout)
    try:
        with archive.handle.attach() as shared:
            result = solve_with_ladder(shared, ladder, timeout=timeout)
        return _rebound(result, instance)
    finally:
        archive.destroy()


def _rebound(result: SolveResult, instance: Instance) -> SolveResult:
    """The same result, re-anchored on the caller's in-process instance.

    The solved arrangement references the shared-memory view, whose
    segment is about to be unlinked; anything reading similarities off
    it afterwards (``max_sum``, validation) would touch freed pages.
    The round-trip is bit-identical, so rebuilding the matching on the
    original instance changes nothing observable.
    """
    if result.arrangement is None:
        return result
    rebound = Arrangement(instance)
    for event, user in result.arrangement.pairs():
        rebound.add(event, user)
    return dataclasses.replace(result, arrangement=rebound)
