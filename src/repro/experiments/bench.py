"""Tracked solver benchmark: the repo's machine-readable perf trajectory.

``geacc bench`` times every headline solver on one fixed reference
instance (the active scale's default synthetic configuration, seed 0)
and writes ``BENCH_solvers.json``: per-solver wall-clock, nodes
expanded, MaxSum and outcome. The file is committed, so any change's
perf impact is one ``geacc bench --compare BENCH_solvers.json`` away --
CI runs exactly that and fails when a solver slows down more than the
tolerated factor.

Comparability rules:

* ``--quick`` (the CI mode) changes only the number of timing repeats,
  never the instance -- a quick run is directly comparable against a
  full baseline;
* comparisons use the *minimum* wall-clock over repeats, the standard
  low-noise estimator for single-process benchmarks;
* a baseline recorded on a different scale/instance shape is a
  comparison error, not a pass -- regenerate the baseline when the
  reference workload changes.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass
from pathlib import Path

from repro.datagen.synthetic import generate_instance
from repro.exceptions import ReproError
from repro.experiments.config import get_scale
from repro.experiments.reporting import format_table
from repro.robustness.harness import run_with_budget
from repro.service.bench import ServiceBench, run_service_bench

#: Format marker of BENCH_*.json reports.
BENCH_FORMAT = "geacc-bench-v1"

#: The Fig. 3/4 algorithm set -- the solvers whose speed the paper plots.
DEFAULT_BENCH_SOLVERS = ("greedy", "mincostflow", "random-v", "random-u")

#: Timing repeats of a full run; ``--quick`` drops to 1.
DEFAULT_REPEATS = 5

#: The fixed instance seed; one workload, comparable across commits.
BENCH_SEED = 0


@dataclass(frozen=True)
class SolverBench:
    """One solver's timings on the reference instance."""

    solver: str
    repeats: int
    seconds_min: float
    seconds_mean: float
    nodes: float
    max_sum: float
    n_pairs: float
    outcome: str

    def to_json(self) -> dict:
        return {
            "repeats": self.repeats,
            "seconds_min": self.seconds_min,
            "seconds_mean": self.seconds_mean,
            "nodes": self.nodes,
            "max_sum": self.max_sum,
            "n_pairs": self.n_pairs,
            "outcome": self.outcome,
        }

    @classmethod
    def from_json(cls, solver: str, data: dict) -> "SolverBench":
        return cls(
            solver=solver,
            repeats=int(data["repeats"]),
            seconds_min=float(data["seconds_min"]),
            seconds_mean=float(data["seconds_mean"]),
            nodes=float(data["nodes"]),
            max_sum=float(data["max_sum"]),
            n_pairs=float(data["n_pairs"]),
            outcome=str(data["outcome"]),
        )


@dataclass(frozen=True)
class BenchReport:
    """All solvers' timings plus the workload that produced them."""

    scale: str
    seed: int
    n_events: int
    n_users: int
    repeats: int
    python: str
    results: tuple[SolverBench, ...]
    service: ServiceBench | None = None

    def result_for(self, solver: str) -> SolverBench | None:
        for result in self.results:
            if result.solver == solver:
                return result
        return None

    def render(self) -> str:
        headers = [
            "solver", "min s", "mean s", "nodes", "MaxSum", "|M|", "outcome",
        ]
        rows = [
            [
                r.solver,
                round(r.seconds_min, 4),
                round(r.seconds_mean, 4),
                r.nodes,
                round(r.max_sum, 3),
                r.n_pairs,
                r.outcome,
            ]
            for r in self.results
        ]
        title = (
            f"== solver bench: scale={self.scale} |V|={self.n_events} "
            f"|U|={self.n_users} seed={self.seed} repeats={self.repeats} =="
        )
        rendered = title + "\n" + format_table(headers, rows)
        if self.service is not None:
            s = self.service
            rendered += (
                "\n== service bench =="
                f"\njournal-append: {1e6 * s.append_seconds:.1f}us/op "
                f"({s.appends_per_second:.0f} appends/s over {s.appends} ops)"
                f"\nrequest:        p50={1000 * s.request_p50:.2f}ms "
                f"p99={1000 * s.request_p99:.2f}ms over {s.requests} requests"
            )
            if s.recovery_records:
                speedup = (
                    s.recovery_full_seconds / s.recovery_snapshot_seconds
                    if s.recovery_snapshot_seconds > 0
                    else 0.0
                )
                rendered += (
                    f"\nrecovery:       full-replay "
                    f"{1000 * s.recovery_full_seconds:.2f}ms vs snapshot+tail "
                    f"{1000 * s.recovery_snapshot_seconds:.2f}ms "
                    f"({speedup:.1f}x, {s.recovery_records} records)"
                )
        return rendered

    def to_json(self) -> dict:
        data = {
            "format": BENCH_FORMAT,
            "scale": self.scale,
            "seed": self.seed,
            "n_events": self.n_events,
            "n_users": self.n_users,
            "repeats": self.repeats,
            "python": self.python,
            "solvers": {r.solver: r.to_json() for r in self.results},
        }
        if self.service is not None:
            data["service"] = self.service.to_json()
        return data

    @classmethod
    def from_json(cls, data: dict) -> "BenchReport":
        if not isinstance(data, dict) or data.get("format") != BENCH_FORMAT:
            raise ReproError(f"not a {BENCH_FORMAT} report")
        return cls(
            scale=str(data["scale"]),
            seed=int(data["seed"]),
            n_events=int(data["n_events"]),
            n_users=int(data["n_users"]),
            repeats=int(data["repeats"]),
            python=str(data.get("python", "")),
            results=tuple(
                SolverBench.from_json(name, entry)
                for name, entry in sorted(data["solvers"].items())
            ),
            # Reports written before the service scenario existed simply
            # lack the key; absence is legal in both directions.
            service=(
                ServiceBench.from_json(data["service"])
                if "service" in data
                else None
            ),
        )


def run_bench(
    solvers: tuple[str, ...] | None = None,
    repeats: int | None = None,
    quick: bool = False,
    scale: str | None = None,
    seed: int = BENCH_SEED,
    with_service: bool = True,
) -> BenchReport:
    """Time ``solvers`` on the reference instance of the active scale.

    The similarity matrix is materialised once, before any timing, so
    every solver is measured on identical footing (the same policy the
    sweep runner applies to its cell groups).

    ``with_service`` additionally runs the serving-path scenario
    (:mod:`repro.service.bench`: journal-append throughput and request
    latency on its own fixed workload) and records it in the report,
    where :func:`compare_reports` gates it like any solver timing.
    """
    resolved = get_scale(scale)
    if solvers is None:
        solvers = DEFAULT_BENCH_SOLVERS
    if repeats is None:
        repeats = 1 if quick else DEFAULT_REPEATS
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    instance = generate_instance(resolved.default, seed)
    instance.sims  # materialise outside the timed region

    results = []
    for name in solvers:
        seconds = []
        nodes = []
        last = None
        for _ in range(repeats):
            last = run_with_budget(name, instance)
            if not last.ok:
                errors = "; ".join(
                    f"{f.error_type}: {f.message}" for f in last.failures
                )
                raise ReproError(f"bench solver {name!r} failed: {errors}")
            seconds.append(last.seconds)
            nodes.append(float(last.nodes))
        assert last is not None and last.arrangement is not None
        results.append(
            SolverBench(
                solver=name,
                repeats=repeats,
                seconds_min=min(seconds),
                seconds_mean=sum(seconds) / len(seconds),
                nodes=sum(nodes) / len(nodes),
                max_sum=last.max_sum(),
                n_pairs=float(len(last.arrangement)),
                outcome=last.outcome.value,
            )
        )
    return BenchReport(
        scale=resolved.name,
        seed=seed,
        n_events=instance.n_events,
        n_users=instance.n_users,
        repeats=repeats,
        python=platform.python_version(),
        results=tuple(results),
        service=run_service_bench(quick=quick) if with_service else None,
    )


def write_report(report: BenchReport, path: str | Path) -> None:
    text = json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
    Path(path).write_text(text, encoding="utf-8")


def load_report(path: str | Path) -> BenchReport:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read bench report {path}: {exc}") from exc
    return BenchReport.from_json(data)


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    max_regression: float = 2.0,
) -> list[str]:
    """Regression messages; empty when ``current`` is acceptable.

    A solver regresses when its minimum wall-clock exceeds the
    baseline's by more than ``max_regression`` times. Solvers present in
    only one report are ignored (new solver / retired solver), but a
    baseline from a different workload is itself a finding -- timings
    from different instances must never be ratioed.

    The serving-path numbers (journal-append seconds/op and request
    p50) are gated by the same factor when both reports carry a
    ``service`` section; like solvers, a section present in only one
    report is ignored.
    """
    if max_regression <= 0:
        raise ValueError(f"max_regression must be > 0, got {max_regression}")
    messages = []
    if (current.scale, current.seed, current.n_events, current.n_users) != (
        baseline.scale,
        baseline.seed,
        baseline.n_events,
        baseline.n_users,
    ):
        messages.append(
            "baseline workload mismatch: baseline is "
            f"scale={baseline.scale} |V|={baseline.n_events} "
            f"|U|={baseline.n_users} seed={baseline.seed}, current is "
            f"scale={current.scale} |V|={current.n_events} "
            f"|U|={current.n_users} seed={current.seed} -- "
            "regenerate the baseline"
        )
        return messages
    for result in current.results:
        base = baseline.result_for(result.solver)
        if base is None or base.seconds_min <= 0:
            continue
        ratio = result.seconds_min / base.seconds_min
        if ratio > max_regression:
            messages.append(
                f"{result.solver}: {result.seconds_min:.4f}s vs baseline "
                f"{base.seconds_min:.4f}s ({ratio:.2f}x > {max_regression:g}x)"
            )
    if current.service is not None and baseline.service is not None:
        service_metrics = (
            (
                "service.journal-append",
                current.service.append_seconds,
                baseline.service.append_seconds,
            ),
            (
                "service.request-p50",
                current.service.request_p50,
                baseline.service.request_p50,
            ),
            # Recovery timings gate like the rest; a pre-snapshot
            # baseline reports 0.0 and is skipped by the <= 0 guard.
            (
                "service.recovery-full",
                current.service.recovery_full_seconds,
                baseline.service.recovery_full_seconds,
            ),
            (
                "service.recovery-snapshot",
                current.service.recovery_snapshot_seconds,
                baseline.service.recovery_snapshot_seconds,
            ),
        )
        for label, now, base_value in service_metrics:
            if base_value <= 0:
                continue
            ratio = now / base_value
            if ratio > max_regression:
                messages.append(
                    f"{label}: {now:.6f}s vs baseline {base_value:.6f}s "
                    f"({ratio:.2f}x > {max_regression:g}x)"
                )
    return messages
