"""Tracked solver benchmark: the repo's machine-readable perf trajectory.

``geacc bench`` times every headline solver on fixed reference workloads
and writes ``BENCH_solvers.json``: per-solver wall-clock, nodes
expanded, MaxSum and outcome. The file is committed, so any change's
perf impact is one ``geacc bench --compare BENCH_solvers.json`` away --
CI runs exactly that and fails when a solver slows down more than the
tolerated factor.

The report is **tiered** (format ``geacc-bench-v2``): each tier is one
named workload set, and the committed file carries every tier that has
been benchmarked. Running one tier rewrites only that tier's section and
preserves the others, so adding a large tier can never mask a
seed-scale regression -- the gate diffs tier against same-named tier,
solver against solver, and a workload shape change inside a tier is a
comparison *error*, never a silent pass.

Tiers:

* every :data:`~repro.experiments.config.SCALES` name is a one-workload
  tier over that scale's default synthetic instance (matrix
  materialised before timing, service scenario included) -- ``scaled``
  is the committed default;
* ``xl`` is the kernel stress tier: Greedy and the random baselines
  stream a 1000 x 100000 instance **matrix-free** (the 10^8-cell
  similarity matrix is never materialised; Greedy goes through the
  index provider exactly as the Fig. 5 scalability runs do), while
  MinCostFlow-GEACC runs on a 200 x 10000 materialised instance --
  large enough that the dense block kernel dominates, small enough to
  finish in about a minute per repeat.

Comparability rules:

* ``--quick`` (the CI mode) changes only the number of timing repeats,
  never any instance -- a quick run is directly comparable against a
  full baseline;
* comparisons use the *minimum* wall-clock over repeats, the standard
  low-noise estimator for single-process benchmarks;
* the collector runs with the cyclic GC disabled (and a collect()
  fence before each solver) so allocation-heavy solvers are not
  charged for other code's garbage;
* a baseline recorded on a different instance shape is a comparison
  error, not a pass -- regenerate the baseline when a reference
  workload changes.
"""

from __future__ import annotations

import gc
import json
import platform
from dataclasses import dataclass
from pathlib import Path

from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.exceptions import ReproError
from repro.experiments.config import SCALES, get_scale
from repro.experiments.reporting import format_table
from repro.robustness.harness import run_with_budget
from repro.service.bench import (
    ServiceBench,
    ShardScalingBench,
    run_service_bench,
    run_shard_scaling_bench,
)

#: Format marker of BENCH_*.json reports (v1 reports are still readable).
BENCH_FORMAT = "geacc-bench-v2"
_BENCH_FORMAT_V1 = "geacc-bench-v1"

#: The Fig. 3/4 algorithm set -- the solvers whose speed the paper plots.
DEFAULT_BENCH_SOLVERS = ("greedy", "mincostflow", "random-v", "random-u")

#: Timing repeats of a full run; ``--quick`` drops to 1.
DEFAULT_REPEATS = 5

#: The fixed instance seed; one workload, comparable across commits.
BENCH_SEED = 0

#: xl streaming workload: 10^3 x 10^5 (10^8 similarity cells, ~800 MB if
#: materialised -- so it never is; solvers must stream). ``cv_high=200``
#: keeps total event capacity around |U| so Greedy does real matching
#: work instead of saturating instantly.
XL_STREAM_CONFIG = SyntheticConfig(n_events=1000, n_users=100_000, cv_high=200)

#: xl flow workload: 200 x 10^4 with the matrix materialised (16 MB) --
#: sized so the dense min-cost-flow kernel, not instance handling, is
#: what the clock sees.
XL_FLOW_CONFIG = SyntheticConfig(n_events=200, n_users=10_000)

#: One xl pass is minutes of wall-clock; min-of-N buys little at that
#: duration, so the xl tier always times a single repeat.
XL_REPEATS = 1

#: Tier names accepted by ``geacc bench --scale`` beyond the SCALES set.
EXTRA_TIERS = ("xl",)


@dataclass(frozen=True)
class _Workload:
    """One instance shape plus the solvers timed on it."""

    config: SyntheticConfig
    solvers: tuple[str, ...]
    materialise_sims: bool


@dataclass(frozen=True)
class SolverBench:
    """One solver's timings on one reference workload."""

    solver: str
    n_events: int
    n_users: int
    repeats: int
    seconds_min: float
    seconds_mean: float
    nodes: float
    max_sum: float
    n_pairs: float
    outcome: str

    def to_json(self) -> dict:
        return {
            "n_events": self.n_events,
            "n_users": self.n_users,
            "repeats": self.repeats,
            "seconds_min": self.seconds_min,
            "seconds_mean": self.seconds_mean,
            "nodes": self.nodes,
            "max_sum": self.max_sum,
            "n_pairs": self.n_pairs,
            "outcome": self.outcome,
        }

    @classmethod
    def from_json(cls, solver: str, data: dict) -> "SolverBench":
        return cls(
            solver=solver,
            n_events=int(data["n_events"]),
            n_users=int(data["n_users"]),
            repeats=int(data["repeats"]),
            seconds_min=float(data["seconds_min"]),
            seconds_mean=float(data["seconds_mean"]),
            nodes=float(data["nodes"]),
            max_sum=float(data["max_sum"]),
            n_pairs=float(data["n_pairs"]),
            outcome=str(data["outcome"]),
        )


@dataclass(frozen=True)
class TierReport:
    """All solvers' timings for one tier, plus the tier's scenario data."""

    tier: str
    seed: int
    repeats: int
    results: tuple[SolverBench, ...]
    service: ServiceBench | None = None
    sharded: ShardScalingBench | None = None

    def result_for(self, solver: str) -> SolverBench | None:
        for result in self.results:
            if result.solver == solver:
                return result
        return None

    def render(self) -> str:
        headers = [
            "solver", "|V|", "|U|", "min s", "mean s", "nodes", "MaxSum",
            "|M|", "outcome",
        ]
        rows = [
            [
                r.solver,
                r.n_events,
                r.n_users,
                round(r.seconds_min, 4),
                round(r.seconds_mean, 4),
                r.nodes,
                round(r.max_sum, 3),
                r.n_pairs,
                r.outcome,
            ]
            for r in self.results
        ]
        title = (
            f"== solver bench: tier={self.tier} seed={self.seed} "
            f"repeats={self.repeats} =="
        )
        rendered = title + "\n" + format_table(headers, rows)
        if self.service is not None:
            s = self.service
            rendered += (
                "\n== service bench =="
                f"\njournal-append: {1e6 * s.append_seconds:.1f}us/op "
                f"({s.appends_per_second:.0f} appends/s over {s.appends} ops)"
                f"\nrequest:        p50={1000 * s.request_p50:.2f}ms "
                f"p99={1000 * s.request_p99:.2f}ms over {s.requests} requests"
            )
            if s.recovery_records:
                speedup = (
                    s.recovery_full_seconds / s.recovery_snapshot_seconds
                    if s.recovery_snapshot_seconds > 0
                    else 0.0
                )
                rendered += (
                    f"\nrecovery:       full-replay "
                    f"{1000 * s.recovery_full_seconds:.2f}ms vs snapshot+tail "
                    f"{1000 * s.recovery_snapshot_seconds:.2f}ms "
                    f"({speedup:.1f}x, {s.recovery_records} records)"
                )
        if self.sharded is not None:
            sweep = " ".join(
                f"{run.shards}={run.seconds:.2f}s({run.aggregate_rps:.0f}rps)"
                for run in self.sharded.runs
            )
            rendered += (
                "\n== sharded service bench =="
                f"\nshards:         {sweep} "
                f"-> {self.sharded.speedup:.1f}x aggregate speedup "
                f"({self.sharded.n_components} components, "
                f"{self.sharded.runs[0].n_requests if self.sharded.runs else 0}"
                " requests/run)"
            )
        return rendered

    def to_json(self) -> dict:
        data = {
            "seed": self.seed,
            "repeats": self.repeats,
            "solvers": {r.solver: r.to_json() for r in self.results},
        }
        if self.service is not None:
            data["service"] = self.service.to_json()
        if self.sharded is not None:
            data["sharded_service"] = self.sharded.to_json()
        return data

    @classmethod
    def from_json(cls, tier: str, data: dict) -> "TierReport":
        return cls(
            tier=tier,
            seed=int(data["seed"]),
            repeats=int(data["repeats"]),
            results=tuple(
                SolverBench.from_json(name, entry)
                for name, entry in sorted(data["solvers"].items())
            ),
            # Reports written before the service scenario existed simply
            # lack the key; absence is legal in both directions.
            service=(
                ServiceBench.from_json(data["service"])
                if "service" in data
                else None
            ),
            sharded=(
                ShardScalingBench.from_json(data["sharded_service"])
                if "sharded_service" in data
                else None
            ),
        )


@dataclass(frozen=True)
class BenchReport:
    """Every benchmarked tier plus the interpreter that produced them."""

    python: str
    tiers: tuple[TierReport, ...]

    def tier_for(self, name: str) -> TierReport | None:
        for tier in self.tiers:
            if tier.tier == name:
                return tier
        return None

    def render(self) -> str:
        return "\n\n".join(tier.render() for tier in self.tiers)

    def to_json(self) -> dict:
        return {
            "format": BENCH_FORMAT,
            "python": self.python,
            "tiers": {tier.tier: tier.to_json() for tier in self.tiers},
        }

    @classmethod
    def from_json(cls, data: dict) -> "BenchReport":
        if not isinstance(data, dict):
            raise ReproError(f"not a {BENCH_FORMAT} report")
        if data.get("format") == _BENCH_FORMAT_V1:
            return cls._from_json_v1(data)
        if data.get("format") != BENCH_FORMAT:
            raise ReproError(f"not a {BENCH_FORMAT} report")
        return cls(
            python=str(data.get("python", "")),
            tiers=tuple(
                TierReport.from_json(name, entry)
                for name, entry in sorted(data["tiers"].items())
            ),
        )

    @classmethod
    def _from_json_v1(cls, data: dict) -> "BenchReport":
        """Read a v1 report as a single tier named after its scale.

        v1 kept one workload shape at the report level; v2 pushes it
        down to each solver, so the shared shape is copied into every
        solver entry during the lift.
        """
        shape = {
            "n_events": int(data["n_events"]),
            "n_users": int(data["n_users"]),
        }
        tier = TierReport(
            tier=str(data["scale"]),
            seed=int(data["seed"]),
            repeats=int(data["repeats"]),
            results=tuple(
                SolverBench.from_json(name, {**shape, **entry})
                for name, entry in sorted(data["solvers"].items())
            ),
            service=(
                ServiceBench.from_json(data["service"])
                if "service" in data
                else None
            ),
        )
        return cls(python=str(data.get("python", "")), tiers=(tier,))


def merge_reports(base: BenchReport, update: BenchReport) -> BenchReport:
    """``base`` with ``update``'s tiers replacing same-named ones.

    This is what makes single-tier runs safe against the committed
    multi-tier baseline: benchmarking one tier rewrites that tier's
    section and carries every other tier through untouched.
    """
    merged = {tier.tier: tier for tier in base.tiers}
    merged.update({tier.tier: tier for tier in update.tiers})
    return BenchReport(
        python=update.python or base.python,
        tiers=tuple(merged[name] for name in sorted(merged)),
    )


def _tier_workloads(name: str) -> tuple[_Workload, ...]:
    if name == "xl":
        return (
            _Workload(
                config=XL_STREAM_CONFIG,
                solvers=("greedy", "random-v", "random-u"),
                materialise_sims=False,
            ),
            _Workload(
                config=XL_FLOW_CONFIG,
                solvers=("mincostflow",),
                materialise_sims=True,
            ),
        )
    resolved = get_scale(name if name in SCALES else None)
    return (
        _Workload(
            config=resolved.default,
            solvers=DEFAULT_BENCH_SOLVERS,
            materialise_sims=True,
        ),
    )


def run_bench(
    solvers: tuple[str, ...] | None = None,
    repeats: int | None = None,
    quick: bool = False,
    scale: str | None = None,
    seed: int = BENCH_SEED,
    with_service: bool = True,
) -> BenchReport:
    """Time one tier's workloads and return a single-tier report.

    ``scale`` selects the tier: a :data:`~repro.experiments.config.
    SCALES` name (or None for the active scale) times the Fig. 3/4
    solver set on that scale's reference instance; ``"xl"`` times the
    kernel stress workloads. Similarity matrices are materialised before
    any timing wherever the tier says so -- and never for the xl
    streaming workload, whose whole point is staying matrix-free.

    ``with_service`` additionally runs the serving-path scenarios
    (:mod:`repro.service.bench`: journal-append throughput, request
    latency, recovery, and the shard-scaling sweep, each on its own
    fixed workload) on scale tiers -- the xl tier never includes them --
    and records them in the report, where :func:`compare_reports` gates
    them like any solver timing.
    """
    is_xl = scale == "xl"
    tier_name = "xl" if is_xl else get_scale(scale).name
    workloads = _tier_workloads(tier_name)
    if repeats is None:
        repeats = 1 if quick or is_xl else DEFAULT_REPEATS
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

    results = []
    for workload in workloads:
        names = (
            workload.solvers
            if solvers is None
            else tuple(s for s in workload.solvers if s in solvers)
        )
        if not names:
            continue
        instance = generate_instance(workload.config, seed)
        if workload.materialise_sims:
            instance.sims  # materialise outside the timed region
        results.extend(
            _time_solvers(names, instance, repeats)
        )
    return BenchReport(
        python=platform.python_version(),
        tiers=(
            TierReport(
                tier=tier_name,
                seed=seed,
                repeats=repeats,
                results=tuple(results),
                service=(
                    run_service_bench(quick=quick)
                    if with_service and not is_xl
                    else None
                ),
                sharded=(
                    run_shard_scaling_bench(quick=quick)
                    if with_service and not is_xl
                    else None
                ),
            ),
        ),
    )


def _time_solvers(
    names: tuple[str, ...], instance, repeats: int  # type: ignore[no-untyped-def]
) -> list[SolverBench]:
    """Time each solver on ``instance`` with the cyclic GC parked."""
    results = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for name in names:
            gc.collect()
            seconds = []
            nodes = []
            last = None
            for _ in range(repeats):
                last = run_with_budget(name, instance)
                if not last.ok:
                    errors = "; ".join(
                        f"{f.error_type}: {f.message}" for f in last.failures
                    )
                    raise ReproError(f"bench solver {name!r} failed: {errors}")
                seconds.append(last.seconds)
                nodes.append(float(last.nodes))
            assert last is not None and last.arrangement is not None
            results.append(
                SolverBench(
                    solver=name,
                    n_events=instance.n_events,
                    n_users=instance.n_users,
                    repeats=repeats,
                    seconds_min=min(seconds),
                    seconds_mean=sum(seconds) / len(seconds),
                    nodes=sum(nodes) / len(nodes),
                    max_sum=last.max_sum(),
                    n_pairs=float(len(last.arrangement)),
                    outcome=last.outcome.value,
                )
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    return results


def write_report(
    report: BenchReport, path: str | Path, preserve_other_tiers: bool = True
) -> None:
    """Write ``report``, merging over any tiers already at ``path``.

    A single-tier run against a multi-tier file updates only its own
    tier; pass ``preserve_other_tiers=False`` to overwrite outright.
    An existing file that does not parse as a bench report is
    overwritten rather than propagated as an error -- the output path
    is this run's to claim.
    """
    target = Path(path)
    if preserve_other_tiers and target.exists():
        try:
            existing = load_report(target)
        except ReproError:
            existing = None
        if existing is not None:
            report = merge_reports(existing, report)
    text = json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
    target.write_text(text, encoding="utf-8")


def load_report(path: str | Path) -> BenchReport:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read bench report {path}: {exc}") from exc
    return BenchReport.from_json(data)


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    max_regression: float = 2.0,
) -> list[str]:
    """Regression messages; empty when ``current`` is acceptable.

    Tiers diff by name; a tier present in only one report is ignored
    (new tier / baseline not yet regenerated), which is exactly why the
    gate runs per tier -- a freshly added xl section can never absorb or
    excuse a seed-scale slowdown, because the seed-scale tier is still
    compared entry by entry.

    Within a tier, a solver regresses when its minimum wall-clock
    exceeds the baseline's by more than ``max_regression`` times.
    Solvers present in only one report are ignored (new solver /
    retired solver), but a baseline from a different workload shape is
    itself a finding -- timings from different instances must never be
    ratioed.

    The serving-path numbers (journal-append seconds/op and request
    p50) are gated by the same factor when both tiers carry a
    ``service`` section; like solvers, a section present in only one
    report is ignored.
    """
    if max_regression <= 0:
        raise ValueError(f"max_regression must be > 0, got {max_regression}")
    messages = []
    for tier in current.tiers:
        base_tier = baseline.tier_for(tier.tier)
        if base_tier is None:
            continue
        messages.extend(
            _compare_tier(tier, base_tier, max_regression)
        )
    return messages


def _compare_tier(
    tier: TierReport, base_tier: TierReport, max_regression: float
) -> list[str]:
    messages = []
    if tier.seed != base_tier.seed:
        return [
            f"{tier.tier}: baseline seed mismatch (baseline seed="
            f"{base_tier.seed}, current seed={tier.seed}) -- "
            "regenerate the baseline"
        ]
    for result in tier.results:
        base = base_tier.result_for(result.solver)
        if base is None:
            continue
        if (result.n_events, result.n_users) != (base.n_events, base.n_users):
            messages.append(
                f"{tier.tier}/{result.solver}: baseline workload mismatch "
                f"(baseline |V|={base.n_events} |U|={base.n_users}, current "
                f"|V|={result.n_events} |U|={result.n_users}) -- "
                "regenerate the baseline"
            )
            continue
        if base.seconds_min <= 0:
            continue
        ratio = result.seconds_min / base.seconds_min
        if ratio > max_regression:
            messages.append(
                f"{tier.tier}/{result.solver}: {result.seconds_min:.4f}s vs "
                f"baseline {base.seconds_min:.4f}s "
                f"({ratio:.2f}x > {max_regression:g}x)"
            )
    if tier.service is not None and base_tier.service is not None:
        service_metrics = (
            (
                "service.journal-append",
                tier.service.append_seconds,
                base_tier.service.append_seconds,
            ),
            (
                "service.request-p50",
                tier.service.request_p50,
                base_tier.service.request_p50,
            ),
            # Recovery timings gate like the rest; a pre-snapshot
            # baseline reports 0.0 and is skipped by the <= 0 guard.
            (
                "service.recovery-full",
                tier.service.recovery_full_seconds,
                base_tier.service.recovery_full_seconds,
            ),
            (
                "service.recovery-snapshot",
                tier.service.recovery_snapshot_seconds,
                base_tier.service.recovery_snapshot_seconds,
            ),
        )
        for label, now, base_value in service_metrics:
            if base_value <= 0:
                continue
            ratio = now / base_value
            if ratio > max_regression:
                messages.append(
                    f"{tier.tier}/{label}: {now:.6f}s vs baseline "
                    f"{base_value:.6f}s ({ratio:.2f}x > {max_regression:g}x)"
                )
    if tier.sharded is not None and base_tier.sharded is not None:
        messages.extend(
            _compare_sharded(tier.tier, tier.sharded, base_tier.sharded, max_regression)
        )
    return messages


def _compare_sharded(
    tier_name: str,
    sharded: ShardScalingBench,
    base: ShardScalingBench,
    max_regression: float,
) -> list[str]:
    """Per-shard-count wall-clock gates for the scaling sweep.

    Shard counts diff like solvers: a count present in only one report
    is ignored (quick runs sweep a subset of the full counts), but a
    baseline from a different clustered workload shape is a finding --
    the sweep's whole claim is same-commands-fewer-entities-per-solve,
    which only holds against the identical instance.
    """
    if sharded.workload_shape() != base.workload_shape() or (
        sharded.seed != base.seed
    ):
        return [
            f"{tier_name}/sharded-service: baseline workload mismatch "
            f"(baseline shape={base.workload_shape()} seed={base.seed}, "
            f"current shape={sharded.workload_shape()} "
            f"seed={sharded.seed}) -- regenerate the baseline"
        ]
    messages = []
    for run in sharded.runs:
        base_run = base.run_for(run.shards)
        if base_run is None or base_run.seconds <= 0:
            continue
        ratio = run.seconds / base_run.seconds
        if ratio > max_regression:
            messages.append(
                f"{tier_name}/sharded-service.{run.shards}-shards: "
                f"{run.seconds:.4f}s vs baseline {base_run.seconds:.4f}s "
                f"({ratio:.2f}x > {max_regression:g}x)"
            )
    return messages


def speedup_summary(current: BenchReport, baseline: BenchReport) -> list[str]:
    """One line per (tier, solver) pair shared with ``baseline``.

    The human-readable counterpart to :func:`compare_reports`: instead
    of gating, it states each solver's speed relative to the committed
    baseline (min wall-clock over repeats, same estimator the gate
    uses). Pairs whose workload shapes differ are skipped -- a ratio of
    timings from different instances would be noise dressed as signal.
    """
    lines = []
    for tier in current.tiers:
        base_tier = baseline.tier_for(tier.tier)
        if base_tier is None or tier.seed != base_tier.seed:
            continue
        for result in tier.results:
            base = base_tier.result_for(result.solver)
            if (
                base is None
                or (result.n_events, result.n_users)
                != (base.n_events, base.n_users)
                or base.seconds_min <= 0
                or result.seconds_min <= 0
            ):
                continue
            ratio = base.seconds_min / result.seconds_min
            verdict = (
                f"{ratio:.2f}x faster" if ratio >= 1.0
                else f"{1.0 / ratio:.2f}x slower"
            )
            lines.append(
                f"{tier.tier}/{result.solver}: {result.seconds_min:.4f}s vs "
                f"{base.seconds_min:.4f}s baseline ({verdict})"
            )
    return lines
