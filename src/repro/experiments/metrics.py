"""Measurement helpers: wall time and peak memory.

The paper reports running time and memory cost per algorithm. We measure
wall time with ``perf_counter`` and peak incremental memory with
``tracemalloc`` (Python allocations, numpy buffers included). tracemalloc
adds per-allocation overhead, so timing and memory are measured in
*separate* runs when ``memory=True`` -- the reported seconds never include
tracing overhead.
"""

from __future__ import annotations

import time
import tracemalloc
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class MeasuredRun:
    """Outcome of one measured call."""

    result: Any
    seconds: float
    peak_mb: float | None


def measure(fn: Callable[[], Any], memory: bool = True) -> MeasuredRun:
    """Run ``fn`` and report wall time and (optionally) peak memory.

    Args:
        fn: Zero-argument callable; its return value is passed through.
        memory: Also run once under tracemalloc for the peak-memory
            figure. The timed run is always untraced.
    """
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    peak_mb = None
    if memory:
        tracemalloc.start()
        try:
            fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        peak_mb = peak / (1024 * 1024)
    return MeasuredRun(result=result, seconds=seconds, peak_mb=peak_mb)
