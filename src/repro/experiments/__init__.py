"""Experiment harness regenerating every figure of the paper.

Each ``fig*`` function in :mod:`repro.experiments.figures` reproduces one
figure (or one column of a multi-column figure): it sweeps the same
parameter the paper sweeps, runs the same algorithms, and returns a
:class:`repro.experiments.runner.Sweep` whose ``render()`` prints the
series the paper plots (MaxSum, running time, peak memory per algorithm).

Two parameter scales exist (:mod:`repro.experiments.config`): ``scaled``
(default; minutes on a laptop, same shapes) and ``paper`` (the literal
Table III grids; hours in pure Python). Select with the ``REPRO_SCALE``
environment variable or an explicit argument.
"""

from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.metrics import MeasuredRun, measure
from repro.experiments.runner import Record, Sweep, run_solver_on, sweep_parameter

__all__ = [
    "SCALES",
    "ExperimentScale",
    "get_scale",
    "MeasuredRun",
    "measure",
    "Record",
    "Sweep",
    "run_solver_on",
    "sweep_parameter",
]
