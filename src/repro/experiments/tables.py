"""Regeneration of the paper's dataset tables (Tables II and III).

These render the dataset statistics the paper tabulates -- for Table II,
measured from actually-generated city instances (cardinalities, capacity
summaries, conflict grid); for Table III, from the live
:class:`~repro.datagen.synthetic.SyntheticConfig` defaults and the
experiment grids, so the tables can never drift from the code.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.synthetic import SyntheticConfig
from repro.datasets.meetup import MeetupCityConfig, meetup_city
from repro.experiments.config import get_scale
from repro.experiments.reporting import format_table


def table2_real_datasets(seed: int = 0) -> str:
    """Render Table II from freshly generated city instances."""
    rows = []
    for city in ("vancouver", "auckland", "singapore"):
        instance = meetup_city(MeetupCityConfig(city=city), seed)
        rows.append(
            [
                city,
                instance.n_events,
                instance.n_users,
                f"[{instance.event_capacities.min()}, "
                f"{instance.event_capacities.max()}]",
                f"[{instance.user_capacities.min()}, "
                f"{instance.user_capacities.max()}]",
                f"{instance.conflicts.density():.2f}",
            ]
        )
    table = format_table(
        ["city", "|V|", "|U|", "c_v range", "c_u range", "cf ratio"], rows
    )
    grid = ", ".join(str(r) for r in get_scale("paper").cf_grid)
    return (
        "== Table II: real (simulated Meetup) datasets ==\n"
        + table
        + f"\nconflict-ratio grid: {grid}"
        + "\ncapacities: Uniform c_v in [1,50], c_u in [1,4];"
        " Normal c_v ~ N(25, 12.5), c_u ~ N(2, 1)"
    )


def table3_synthetic_config() -> str:
    """Render Table III from the live defaults and paper grids."""
    paper = get_scale("paper")
    defaults = SyntheticConfig()

    def mark_default(values, default) -> str:
        return ", ".join(
            f"*{v}*" if v == default else str(v) for v in values
        )

    rows = [
        ["|V|", mark_default(paper.v_grid, defaults.n_events)],
        ["|U|", mark_default(paper.u_grid, defaults.n_users)],
        ["d", mark_default(paper.d_grid, defaults.d)],
        ["T", str(int(defaults.t))],
        [
            "l_v, l_u",
            "Uniform [0, T]; Normal mu=T/4 or 3T/4, sigma=T/4; Zipf 1.3",
        ],
        [
            "c_v",
            "Uniform [1, max]: max in "
            + mark_default(paper.cv_max_grid, defaults.cv_high)
            + "; Normal N(25, 12.5)",
        ],
        [
            "c_u",
            "Uniform [1, max]: max in "
            + mark_default(paper.cu_max_grid, defaults.cu_high)
            + "; Normal N(2, 1)",
        ],
        [
            "|CF| ratio",
            mark_default(paper.cf_grid, defaults.conflict_ratio),
        ],
        [
            "scalability",
            f"|V| in {list(paper.scalability_v_grid)}, "
            f"|U| in {list(paper.scalability_u_grid)}",
        ],
    ]
    return (
        "== Table III: synthetic dataset configuration "
        "(*bold* = default) ==\n" + format_table(["factor", "setting"], rows)
    )


def capacity_statistics(seed: int = 0) -> str:
    """Extra diagnostics: generated capacity means vs the paper's specs."""
    rng = np.random.default_rng(seed)
    from repro.datagen.distributions import sample_capacities

    rows = []
    for label, kwargs, expected in (
        ("c_v Uniform[1,50]", dict(distribution="uniform", low=1, high=50), 25.5),
        ("c_u Uniform[1,4]", dict(distribution="uniform", low=1, high=4), 2.5),
        ("c_v Normal(25,12.5)", dict(distribution="normal", mu=25, sigma=12.5), 25.0),
        ("c_u Normal(2,1)", dict(distribution="normal", mu=2, sigma=1), 2.1),
    ):
        sample = sample_capacities(rng, 20_000, **kwargs)
        rows.append([label, f"{sample.mean():.2f}", f"{expected:.2f}"])
    return format_table(["capacity spec", "generated mean", "spec mean"], rows)
