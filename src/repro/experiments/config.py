"""Parameter grids for the evaluation (Tables II-III), at two scales.

``paper`` is the literal configuration of the paper. The authors ran C++
on an i7-2600; pure Python cannot sweep the same grids in comparable wall
time, so ``scaled`` shrinks cardinalities (keeping every *ratio* --
|U|/|V|, capacity/cardinality, conflict density -- and every distribution)
to run the full figure suite in minutes. EXPERIMENTS.md records results at
the scaled grids; rerun with ``REPRO_SCALE=paper`` for the full ones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.datagen.synthetic import SyntheticConfig


@dataclass(frozen=True)
class ExperimentScale:
    """One complete set of evaluation grids.

    Attributes mirror the paper's evaluation section: ``v_grid`` etc. are
    the x-axes of Fig. 3/4; ``scalability_*`` drive Fig. 5a-b;
    ``effectiveness_*`` drive Fig. 5c-d; ``fig6_*`` drive Fig. 6.
    """

    name: str
    default: SyntheticConfig
    v_grid: tuple[int, ...]
    u_grid: tuple[int, ...]
    d_grid: tuple[int, ...] = (2, 5, 10, 15, 20)
    cf_grid: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)
    cv_max_grid: tuple[int, ...] = ()
    cu_max_grid: tuple[int, ...] = (2, 4, 6, 8, 10)
    scalability_v_grid: tuple[int, ...] = ()
    scalability_u_grid: tuple[int, ...] = ()
    scalability_cv_max: int = 200
    # Fig. 5c-d: tiny instances where the exact solver is feasible.
    effectiveness_config: SyntheticConfig = field(
        default_factory=lambda: SyntheticConfig(
            n_events=5, n_users=15, cv_high=10, cu_high=4
        )
    )
    # Fig. 6: prune-vs-exhaustive instrumentation instances.
    fig6_n_events: int = 5
    fig6_u_values: tuple[int, ...] = (10, 15)
    fig6_exhaustive_users: int = 10
    fig6_cu_high: int = 4
    repeats: int = 3


_PAPER = ExperimentScale(
    name="paper",
    default=SyntheticConfig(),
    v_grid=(20, 50, 100, 200, 500),
    u_grid=(100, 200, 500, 1000, 2000, 5000),
    cv_max_grid=(10, 20, 50, 100, 200),
    scalability_v_grid=(100, 200, 500, 1000),
    scalability_u_grid=(10_000, 25_000, 50_000, 75_000, 100_000),
    # The paper states Fig. 6 uses the Table III defaults (c_u ~ U[1, 4]),
    # but the exhaustive no-pruning baseline then has ~31^10 feasible
    # matchings to enumerate -- infeasible in any implementation. We cap
    # c_u at 2 for the Fig. 6 instances (see EXPERIMENTS.md).
    fig6_cu_high=2,
    repeats=3,
)

_SCALED = ExperimentScale(
    name="scaled",
    default=SyntheticConfig(n_events=40, n_users=250, cv_high=20),
    v_grid=(10, 20, 40, 80, 160),
    u_grid=(50, 100, 250, 500, 1000),
    cv_max_grid=(5, 10, 20, 40, 80),
    scalability_v_grid=(50, 100, 200),
    scalability_u_grid=(2_000, 5_000, 10_000, 20_000),
    scalability_cv_max=80,
    # Exhaustive search explodes combinatorially; cap user capacity at 2
    # and shrink |V| for the Fig. 6 comparison so the no-pruning baseline
    # terminates (documented in EXPERIMENTS.md).
    fig6_n_events=4,
    fig6_u_values=(6, 8),
    fig6_exhaustive_users=6,
    fig6_cu_high=2,
    repeats=2,
)

#: A grid for smoke tests: every figure in seconds.
_SMOKE = ExperimentScale(
    name="smoke",
    default=SyntheticConfig(n_events=10, n_users=50, cv_high=8),
    v_grid=(5, 10, 20),
    u_grid=(20, 50, 100),
    d_grid=(2, 10, 20),
    cf_grid=(0.0, 0.5, 1.0),
    cv_max_grid=(2, 8, 20),
    cu_max_grid=(2, 6),
    scalability_v_grid=(10, 20),
    scalability_u_grid=(200, 500),
    scalability_cv_max=20,
    effectiveness_config=SyntheticConfig(
        n_events=4, n_users=8, cv_high=6, cu_high=2
    ),
    fig6_n_events=3,
    fig6_u_values=(4, 6),
    fig6_exhaustive_users=4,
    fig6_cu_high=2,
    repeats=1,
)

SCALES = {"paper": _PAPER, "scaled": _SCALED, "smoke": _SMOKE}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by argument, ``REPRO_SCALE``, or default."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "scaled")
    try:
        return SCALES[name]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise ValueError(f"unknown scale {name!r}; known: {known}")
