"""Generic sweep runner shared by all figure drivers.

A sweep varies one workload parameter over a grid, generates ``repeats``
instances per grid point (different seeds), runs each requested solver,
validates feasibility of every arrangement, and averages MaxSum / time /
memory. :class:`Sweep` renders the same rows the paper's figures plot.

Crash safety
------------
Long sweeps die for boring reasons (OOM killers, preempted machines,
Ctrl-C). The runner therefore treats every (grid point, seed, solver)
triple as an isolated *cell*:

* a cell that raises is caught, classified (:func:`~repro.robustness.
  outcome.is_transient`), retried a bounded number of times with a fresh
  instance seed when transient, and finally recorded as a structured
  failure instead of killing the sweep;
* with ``checkpoint_path`` set, every finished cell is appended to a
  JSONL file (header line + one :class:`CellResult` per line, flushed
  and fsynced) the moment it completes;
* ``resume=True`` reloads that file and skips every successfully
  completed cell -- previously written lines are never rewritten, so a
  killed sweep resumed later produces the identical file and tables
  while re-running zero finished cells.

``KeyboardInterrupt`` is deliberately *not* caught: it kills the sweep
between cells, which is exactly the crash the checkpoint protects
against.

Parallelism
-----------
``jobs > 1`` routes the missing cells through
:func:`repro.parallel.run_cell_groups`: the parent stays the sole
checkpoint writer (workers hand finished cells back over the pool's
result channel), cells keep their stable :func:`cell_key` identities,
and the final tables are merged in grid order -- so only the *line
order* of the checkpoint depends on scheduling, and
:func:`canonical_checkpoint_lines` of a ``jobs=1`` and a ``jobs=4`` run
of the same grid are identical.

Serial or parallel, cells are grouped by (grid point, seed): the
instance -- similarity matrix included -- is materialised **once** per
group and shared by every solver in it (zero-copy via shared memory in
the parallel case).
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.algorithms import get_solver
from repro.core.model import Instance
from repro.core.validation import validate_arrangement
from repro.exceptions import ReproError
from repro.experiments.metrics import measure
from repro.experiments.reporting import format_table
from repro.robustness.budget import Budget
from repro.robustness.harness import run_with_budget
from repro.robustness.outcome import FailureRecord, Outcome, is_transient

#: The algorithm set of Fig. 3 / Fig. 4.
DEFAULT_SOLVERS = ("greedy", "mincostflow", "random-v", "random-u")

#: First line of every sweep checkpoint file (plus the sweep name).
CHECKPOINT_FORMAT = "geacc-sweep-v1"

#: Instance-seed stride for transient-failure retries. Large and prime so
#: retry seeds never collide with the sweep's own ``range(repeats)`` seeds.
RETRY_SEED_STRIDE = 1_000_003

#: Above this many (|V|, |U|) matrix cells a sweep group keeps the
#: similarity matrix unmaterialised and solvers stream through the NN
#: index instead -- the same threshold
#: :func:`repro.core.algorithms.neighbors.neighbor_orders_for` uses to
#: pick its backend, so sharing never forces an allocation the solver
#: itself would have refused.
SHARED_SIMS_CELL_LIMIT = 20_000_000


def want_shared_sims(instance: Instance) -> bool:
    """Should a sweep group materialise + share this instance's matrix?

    Serial and parallel executors both consult this, so whether a cell's
    solver sees ``has_matrix`` is a property of the instance, never of
    ``--jobs`` -- keeping checkpoints canonically identical across modes.
    """
    if instance.has_matrix:
        return True
    return instance.n_events * instance.n_users <= SHARED_SIMS_CELL_LIMIT


@dataclass(frozen=True)
class Record:
    """Averaged result of one (grid point, solver) cell."""

    x: object
    solver: str
    max_sum: float
    seconds: float
    peak_mb: float
    n_pairs: float


def cell_key(x: object, seed: int, solver: str) -> str:
    """Canonical JSON key of one sweep cell.

    JSON serialisation makes tuples and lists identical, so a key
    computed from the live grid matches one reloaded from a checkpoint.
    """
    return json.dumps([x, seed, solver], sort_keys=True)


@dataclass(frozen=True)
class CellResult:
    """One finished (grid point, seed, solver) cell -- the checkpoint unit."""

    x: object
    seed: int
    solver: str
    status: str  # "ok" | "failed"
    outcome: str  # an Outcome value
    max_sum: float
    seconds: float
    peak_mb: float
    n_pairs: float
    attempts: int = 1
    failures: tuple[FailureRecord, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def key(self) -> str:
        return cell_key(self.x, self.seed, self.solver)

    def to_json(self) -> dict:
        return {
            "x": self.x,
            "seed": self.seed,
            "solver": self.solver,
            "status": self.status,
            "outcome": self.outcome,
            "max_sum": self.max_sum,
            "seconds": self.seconds,
            "peak_mb": self.peak_mb,
            "n_pairs": self.n_pairs,
            "attempts": self.attempts,
            "failures": [f.to_json() for f in self.failures],
        }

    @classmethod
    def from_json(cls, data: dict) -> "CellResult":
        return cls(
            x=data["x"],
            seed=int(data["seed"]),
            solver=data["solver"],
            status=data["status"],
            outcome=data["outcome"],
            max_sum=float(data["max_sum"]),
            seconds=float(data["seconds"]),
            peak_mb=float(data["peak_mb"]),
            n_pairs=float(data["n_pairs"]),
            attempts=int(data.get("attempts", 1)),
            failures=tuple(
                FailureRecord.from_json(f) for f in data.get("failures", ())
            ),
        )


class SweepCheckpoint:
    """Append-only JSONL checkpoint of a sweep's finished cells.

    Line 1 is a header identifying the format and sweep name; every
    further line is one :class:`CellResult`. Appends are flushed and
    fsynced so a cell either fully reached disk or is re-run on resume;
    a torn final line (crash mid-write) is tolerated by :meth:`load`.
    """

    def __init__(self, path: str | Path, name: str) -> None:
        self.path = Path(path)
        self.name = name
        #: Byte offset after the last complete line seen by :meth:`load`;
        #: ``None`` until a load has run.
        self._good_size: int | None = None

    def exists(self) -> bool:
        return self.path.exists()

    def reset(self) -> None:
        """Start a fresh checkpoint file containing only the header."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps({"format": CHECKPOINT_FORMAT, "name": self.name}) + "\n"
            )
            fh.flush()
            os.fsync(fh.fileno())

    def load(self) -> dict[str, CellResult]:
        """Completed cells keyed by :func:`cell_key`; {} when absent.

        Raises:
            ReproError: The file exists but is not a checkpoint of this
                sweep (wrong format marker or sweep name) -- resuming
                into it would silently mix unrelated experiments.
        """
        if not self.path.exists():
            return {}
        cells: dict[str, CellResult] = {}
        with open(self.path, "rb") as fh:
            header_line = fh.readline()
            try:
                header = json.loads(header_line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ReproError(
                    f"{self.path} is not a sweep checkpoint (unreadable header)"
                ) from exc
            if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
                raise ReproError(
                    f"{self.path} is not a {CHECKPOINT_FORMAT} checkpoint"
                )
            if header.get("name") != self.name:
                raise ReproError(
                    f"{self.path} belongs to sweep {header.get('name')!r}, "
                    f"not {self.name!r}"
                )
            self._good_size = len(header_line)
            for line in fh:
                # A line that lacks its newline was cut mid-write even if
                # it happens to parse -- treat it as torn too.
                if not line.endswith(b"\n"):
                    break
                try:
                    cell = CellResult.from_json(json.loads(line.decode("utf-8")))
                except (
                    UnicodeDecodeError,
                    json.JSONDecodeError,
                    KeyError,
                    TypeError,
                    ValueError,
                ):
                    break  # torn tail from a crash mid-append; re-run from here
                cells[cell.key()] = cell
                self._good_size += len(line)
        return cells

    def truncate_torn_tail(self) -> None:
        """Drop a torn final line left by a crash mid-append.

        Must run after :meth:`load` and before the first :meth:`append`
        of a resumed sweep: appending straight after a torn fragment
        would glue the fragment and the new cell into one corrupt line.
        """
        if self._good_size is None or not self.path.exists():
            return
        if self.path.stat().st_size > self._good_size:
            with open(self.path, "rb+") as fh:
                fh.truncate(self._good_size)

    def append(self, cell: CellResult) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(cell.to_json()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())


@dataclass
class Sweep:
    """Results of one parameter sweep (one figure column)."""

    name: str
    x_label: str
    records: list[Record] = field(default_factory=list)
    failures: list[CellResult] = field(default_factory=list)

    def solvers(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.solver not in seen:
                seen.append(record.solver)
        return seen

    def series(self, solver: str, metric: str) -> list[tuple[object, float]]:
        """(x, value) pairs for one solver and metric column."""
        return [
            (r.x, getattr(r, metric)) for r in self.records if r.solver == solver
        ]

    def render(self) -> str:
        """The figure's three panels (MaxSum, seconds, MB) as tables."""
        blocks = [f"== {self.name} =="]
        for metric, title in (
            ("max_sum", "MaxSum"),
            ("seconds", "running time (s)"),
            ("peak_mb", "peak memory (MB)"),
        ):
            solvers = self.solvers()
            xs = []
            for record in self.records:
                if record.x not in xs:
                    xs.append(record.x)
            rows = []
            for x in xs:
                row: list[object] = [x]
                for solver in solvers:
                    values = dict(self.series(solver, metric))
                    row.append(values.get(x))
                rows.append(row)
            blocks.append(f"-- {title} --")
            blocks.append(format_table([self.x_label, *solvers], rows))
        if self.failures:
            blocks.append(f"-- failed cells ({len(self.failures)}) --")
            rows = [
                [
                    cell.x,
                    cell.seed,
                    cell.solver,
                    cell.attempts,
                    "; ".join(
                        f"{f.error_type}: {f.message}" for f in cell.failures
                    ),
                ]
                for cell in self.failures
            ]
            blocks.append(
                format_table([self.x_label, "seed", "solver", "attempts", "errors"], rows)
            )
        return "\n".join(blocks)


def run_solver_on(
    instance: Instance, solver_name: str, memory: bool = True, **solver_kwargs
) -> Record:
    """Run one solver on one instance, validating the output."""
    solver = get_solver(solver_name, **solver_kwargs)
    run = measure(lambda: solver.solve(instance), memory=memory)
    arrangement = run.result
    validate_arrangement(arrangement)
    return Record(
        x=None,
        solver=solver_name,
        max_sum=arrangement.max_sum(),
        seconds=run.seconds,
        peak_mb=run.peak_mb if run.peak_mb is not None else 0.0,
        n_pairs=float(len(arrangement)),
    )


def run_cell(
    instance_factory: Callable[[object, int], Instance],
    x: object,
    seed: int,
    solver_name: str,
    *,
    memory: bool = True,
    solver_kwargs: dict | None = None,
    timeout: float | None = None,
    node_limit: int | None = None,
    max_attempts: int = 2,
    instance: Instance | None = None,
) -> CellResult:
    """Run one sweep cell in isolation; never raises (except BaseException).

    Failures are classified with :func:`is_transient`; transient ones
    are retried up to ``max_attempts`` times total, each retry
    regenerating the instance with seed ``seed + RETRY_SEED_STRIDE *
    attempt`` so a poisoned instance draw cannot wedge the sweep.

    Args:
        instance: Pre-materialised instance for the *first* attempt --
            how a (grid point, seed) group shares one instance (and one
            similarity matrix) across its solvers. Retries always
            regenerate through the factory: a shared instance that
            provoked a transient failure must not be resampled into
            every retry.
    """
    failures: list[FailureRecord] = []
    attempts = 0
    for attempt in range(max(1, max_attempts)):
        attempts += 1
        instance_seed = seed + RETRY_SEED_STRIDE * attempt
        if attempt == 0 and instance is not None:
            attempt_instance = instance
        else:
            try:
                attempt_instance = instance_factory(x, instance_seed)
            except Exception as exc:
                record = FailureRecord(
                    solver=solver_name,
                    error_type=type(exc).__name__,
                    message=f"instance generation failed: {exc}",
                    transient=is_transient(exc),
                    attempt=attempt,
                )
                failures.append(record)
                if not record.transient:
                    break
                continue
        run = measure(
            lambda: run_with_budget(
                solver_name,
                attempt_instance,
                timeout=timeout,
                node_limit=node_limit,
                solver_kwargs=solver_kwargs,
            ),
            memory=memory,
        )
        result = run.result
        if result.ok:
            return CellResult(
                x=x,
                seed=seed,
                solver=solver_name,
                status="ok",
                outcome=result.outcome.value,
                max_sum=result.max_sum(),
                seconds=result.seconds,
                peak_mb=run.peak_mb if run.peak_mb is not None else 0.0,
                n_pairs=float(len(result.arrangement)),
                attempts=attempts,
                failures=tuple(failures) + result.failures,
            )
        failures.extend(
            FailureRecord(
                solver=f.solver,
                error_type=f.error_type,
                message=f.message,
                transient=f.transient,
                attempt=attempt,
            )
            for f in result.failures
        )
        if not any(f.transient for f in result.failures):
            break
    return CellResult(
        x=x,
        seed=seed,
        solver=solver_name,
        status="failed",
        outcome=Outcome.FAILED.value,
        max_sum=0.0,
        seconds=0.0,
        peak_mb=0.0,
        n_pairs=0.0,
        attempts=attempts,
        failures=tuple(failures),
    )


def _effective_timeout(timeout: float | None, budget: Budget | None) -> float | None:
    """Per-cell timeout with the sweep budget's remaining deadline capped in."""
    if budget is None or budget.deadline is None:
        return timeout
    remaining = budget.remaining_seconds() or 0.0
    return remaining if timeout is None else min(timeout, remaining)


def _run_groups_serial(
    instance_factory: Callable[[object, int], Instance],
    groups: Sequence[tuple[object, int, tuple[str, ...]]],
    *,
    memory: bool,
    solver_kwargs: dict[str, dict],
    timeout: float | None,
    node_limit: int | None,
    max_attempts: int,
    budget: Budget | None = None,
    on_cell: Callable[[CellResult], None] | None = None,
) -> dict[str, CellResult]:
    """Serial twin of :func:`repro.parallel.run_cell_groups`.

    Same contract: one instance per (grid point, seed) group shared by
    all its solvers, budget-expired cells simply absent from the
    returned mapping, ``on_cell`` invoked per finished cell.
    """
    results: dict[str, CellResult] = {}
    if budget is not None:
        budget.start()
    for x, seed, group_solvers in groups:
        if budget is not None and budget.expired():
            break
        try:
            shared: Instance | None = instance_factory(x, seed)
        except Exception:
            # Leave generation (and its classify/retry treatment) to
            # run_cell; only Exception is absorbed -- a KeyboardInterrupt
            # here kills the sweep exactly like the per-cell path would.
            shared = None
        if shared is not None and want_shared_sims(shared):
            shared.sims  # materialise once; every solver in the group reuses it
        for solver_name in group_solvers:
            if budget is not None and budget.expired():
                break
            cell = run_cell(
                instance_factory,
                x,
                seed,
                solver_name,
                memory=memory,
                solver_kwargs=solver_kwargs.get(solver_name),
                timeout=_effective_timeout(timeout, budget),
                node_limit=node_limit,
                max_attempts=max_attempts,
                instance=shared,
            )
            results[cell.key()] = cell
            if on_cell is not None:
                on_cell(cell)
    if budget is not None and budget.expired():
        budget.mark_exhausted("sweep deadline exhausted")
    return results


def canonical_checkpoint_lines(path: str | Path) -> list[str]:
    """A checkpoint's cell lines in scheduling-independent form.

    Parallel sweeps append cells in completion order and timings are
    never reproducible, so raw files differ run to run. This strips the
    two nondeterministic fields (``seconds``, ``peak_mb``), re-serialises
    with sorted keys and sorts the lines -- two runs of the same grid
    are equivalent iff their canonical lines are equal, whatever
    ``jobs`` was.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    canonical = []
    for line in lines[1:]:  # line 0 is the header
        data = json.loads(line)
        data["seconds"] = 0.0
        data["peak_mb"] = 0.0
        canonical.append(json.dumps(data, sort_keys=True))
    return sorted(canonical)


def sweep_parameter(
    name: str,
    x_label: str,
    grid: Sequence[object],
    instance_factory: Callable[[object, int], Instance],
    solvers: Sequence[str] = DEFAULT_SOLVERS,
    repeats: int = 3,
    memory: bool = True,
    solver_kwargs: dict[str, dict] | None = None,
    *,
    checkpoint_path: str | Path | None = None,
    resume: bool = False,
    timeout: float | None = None,
    node_limit: int | None = None,
    max_attempts: int = 2,
    jobs: int = 1,
    budget: Budget | None = None,
) -> Sweep:
    """Run ``solvers`` over ``grid``, averaging ``repeats`` seeds per point.

    Args:
        instance_factory: ``(grid value, seed) -> Instance``. A fresh
            instance per (point, seed); all solvers at a point share it
            (materialised once, similarity matrix included).
        solver_kwargs: Optional per-solver constructor arguments.
        checkpoint_path: JSONL file to append each finished cell to
            (created with a header line; see :class:`SweepCheckpoint`).
        resume: Reload ``checkpoint_path`` and skip every cell already
            completed successfully; without it an existing file is
            overwritten.
        timeout / node_limit: Per-cell budget forwarded to
            :func:`~repro.robustness.harness.run_with_budget`; timed-out
            cells report their anytime best-so-far with outcome
            ``feasible-timeout`` and still average into the tables.
        max_attempts: Total tries per cell when failures are transient.
        jobs: ``1`` (default) runs every cell serially in this process,
            exactly as before. ``N > 1`` fans cells out to ``N`` worker
            processes via :func:`repro.parallel.run_cell_groups`
            (``0`` = all cores); if the platform cannot run the pool the
            sweep degrades to serial. Either way the tables and the
            canonically-sorted checkpoint are identical.
        budget: Optional sweep-wide :class:`~repro.robustness.budget.
            Budget`. Its remaining deadline caps every cell's timeout;
            once it expires, not-yet-run cells are skipped (parallel:
            outstanding cells are cancelled) and are simply absent from
            the tables -- resume later to finish them.

    Cells are visited in deterministic order (grid, then seed, then
    solver); per (point, solver) the averages cover the successful
    cells, and cells that exhausted their retries are collected in
    :attr:`Sweep.failures` instead of poisoning the whole sweep.
    """
    solver_kwargs = solver_kwargs or {}
    checkpoint: SweepCheckpoint | None = None
    completed: dict[str, CellResult] = {}
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(checkpoint_path, name)
        if resume and checkpoint.exists():
            completed = checkpoint.load()
            checkpoint.truncate_torn_tail()
        else:
            checkpoint.reset()

    # The work list: one group per (grid point, seed), carrying only the
    # solvers whose cell is not already completed successfully.
    groups: list[tuple[object, int, tuple[str, ...]]] = []
    for x in grid:
        for seed in range(repeats):
            missing = tuple(
                s
                for s in solvers
                if not (prior := completed.get(cell_key(x, seed, s))) or not prior.ok
            )
            if missing:
                groups.append((x, seed, missing))

    on_cell = checkpoint.append if checkpoint is not None else None
    run_serial = jobs == 1
    fresh: dict[str, CellResult] = {}
    if not run_serial and groups:
        from repro.parallel import ParallelUnavailableError, run_cell_groups

        try:
            fresh = run_cell_groups(
                instance_factory,
                groups,
                jobs=jobs,
                memory=memory,
                solver_kwargs=solver_kwargs,
                timeout=timeout,
                node_limit=node_limit,
                max_attempts=max_attempts,
                budget=budget,
                on_cell=on_cell,
            )
        except ParallelUnavailableError:
            run_serial = True
    if run_serial and groups:
        fresh = _run_groups_serial(
            instance_factory,
            groups,
            memory=memory,
            solver_kwargs=solver_kwargs,
            timeout=timeout,
            node_limit=node_limit,
            max_attempts=max_attempts,
            budget=budget,
            on_cell=on_cell,
        )
    merged = dict(completed)
    merged.update(fresh)

    # Deterministic grid-order aggregation: completion order of a
    # parallel run cannot leak into the tables.
    sweep = Sweep(name=name, x_label=x_label)
    for x in grid:
        for solver_name in solvers:
            cells = [
                cell
                for seed in range(repeats)
                if (cell := merged.get(cell_key(x, seed, solver_name))) is not None
            ]
            ok_cells = [c for c in cells if c.ok]
            sweep.failures.extend(c for c in cells if not c.ok)
            if not ok_cells:
                continue
            n = len(ok_cells)
            sweep.records.append(
                Record(
                    x=x,
                    solver=solver_name,
                    max_sum=sum(c.max_sum for c in ok_cells) / n,
                    seconds=sum(c.seconds for c in ok_cells) / n,
                    peak_mb=sum(c.peak_mb for c in ok_cells) / n,
                    n_pairs=sum(c.n_pairs for c in ok_cells) / n,
                )
            )
    return sweep
