"""Generic sweep runner shared by all figure drivers.

A sweep varies one workload parameter over a grid, generates ``repeats``
instances per grid point (different seeds), runs each requested solver,
validates feasibility of every arrangement, and averages MaxSum / time /
memory. :class:`Sweep` renders the same rows the paper's figures plot.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.algorithms import get_solver
from repro.core.model import Instance
from repro.core.validation import validate_arrangement
from repro.experiments.metrics import measure
from repro.experiments.reporting import format_table

#: The algorithm set of Fig. 3 / Fig. 4.
DEFAULT_SOLVERS = ("greedy", "mincostflow", "random-v", "random-u")


@dataclass(frozen=True)
class Record:
    """Averaged result of one (grid point, solver) cell."""

    x: object
    solver: str
    max_sum: float
    seconds: float
    peak_mb: float
    n_pairs: float


@dataclass
class Sweep:
    """Results of one parameter sweep (one figure column)."""

    name: str
    x_label: str
    records: list[Record] = field(default_factory=list)

    def solvers(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.solver not in seen:
                seen.append(record.solver)
        return seen

    def series(self, solver: str, metric: str) -> list[tuple[object, float]]:
        """(x, value) pairs for one solver and metric column."""
        return [
            (r.x, getattr(r, metric)) for r in self.records if r.solver == solver
        ]

    def render(self) -> str:
        """The figure's three panels (MaxSum, seconds, MB) as tables."""
        blocks = [f"== {self.name} =="]
        for metric, title in (
            ("max_sum", "MaxSum"),
            ("seconds", "running time (s)"),
            ("peak_mb", "peak memory (MB)"),
        ):
            solvers = self.solvers()
            xs = []
            for record in self.records:
                if record.x not in xs:
                    xs.append(record.x)
            rows = []
            for x in xs:
                row: list[object] = [x]
                for solver in solvers:
                    values = dict(self.series(solver, metric))
                    row.append(values.get(x))
                rows.append(row)
            blocks.append(f"-- {title} --")
            blocks.append(format_table([self.x_label, *solvers], rows))
        return "\n".join(blocks)


def run_solver_on(
    instance: Instance, solver_name: str, memory: bool = True, **solver_kwargs
) -> Record:
    """Run one solver on one instance, validating the output."""
    solver = get_solver(solver_name, **solver_kwargs)
    run = measure(lambda: solver.solve(instance), memory=memory)
    arrangement = run.result
    validate_arrangement(arrangement)
    return Record(
        x=None,
        solver=solver_name,
        max_sum=arrangement.max_sum(),
        seconds=run.seconds,
        peak_mb=run.peak_mb if run.peak_mb is not None else 0.0,
        n_pairs=float(len(arrangement)),
    )


def sweep_parameter(
    name: str,
    x_label: str,
    grid: Sequence[object],
    instance_factory: Callable[[object, int], Instance],
    solvers: Sequence[str] = DEFAULT_SOLVERS,
    repeats: int = 3,
    memory: bool = True,
    solver_kwargs: dict[str, dict] | None = None,
) -> Sweep:
    """Run ``solvers`` over ``grid``, averaging ``repeats`` seeds per point.

    Args:
        instance_factory: ``(grid value, seed) -> Instance``. A fresh
            instance per (point, seed); all solvers at a point share it.
        solver_kwargs: Optional per-solver constructor arguments.
    """
    solver_kwargs = solver_kwargs or {}
    sweep = Sweep(name=name, x_label=x_label)
    for x in grid:
        accumulators = {s: [0.0, 0.0, 0.0, 0.0] for s in solvers}
        for seed in range(repeats):
            instance = instance_factory(x, seed)
            for solver_name in solvers:
                record = run_solver_on(
                    instance,
                    solver_name,
                    memory=memory,
                    **solver_kwargs.get(solver_name, {}),
                )
                acc = accumulators[solver_name]
                acc[0] += record.max_sum
                acc[1] += record.seconds
                acc[2] += record.peak_mb
                acc[3] += record.n_pairs
        for solver_name in solvers:
            acc = accumulators[solver_name]
            sweep.records.append(
                Record(
                    x=x,
                    solver=solver_name,
                    max_sum=acc[0] / repeats,
                    seconds=acc[1] / repeats,
                    peak_mb=acc[2] / repeats,
                    n_pairs=acc[3] / repeats,
                )
            )
    return sweep
