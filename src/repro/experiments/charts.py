"""Plain-text chart rendering for sweep results.

Matplotlib is deliberately not a dependency; these render the paper's
figure panels as aligned horizontal bar charts in the terminal, one bar
per (grid point, algorithm) cell, scaled to the panel's maximum. Used by
``geacc experiment --chart``.
"""

from __future__ import annotations

from repro.experiments.runner import Sweep

_BAR_WIDTH = 40
_FULL = "#"


def render_bars(
    sweep: Sweep, metric: str = "max_sum", width: int = _BAR_WIDTH
) -> str:
    """One metric panel of a sweep as horizontal bars.

    Args:
        sweep: A finished parameter sweep.
        metric: ``max_sum``, ``seconds``, ``peak_mb`` or ``n_pairs``.
        width: Bar width in characters for the panel maximum.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    solvers = sweep.solvers()
    values: dict[tuple[object, str], float] = {}
    xs: list[object] = []
    for record in sweep.records:
        if record.x not in xs:
            xs.append(record.x)
        values[(record.x, record.solver)] = float(getattr(record, metric))
    peak = max(values.values(), default=0.0)
    label_width = max(
        [len(str(x)) for x in xs] + [len(sweep.x_label)]
    )
    solver_width = max(len(s) for s in solvers) if solvers else 0

    lines = [f"== {sweep.name} :: {metric} =="]
    for x in xs:
        lines.append(f"{str(x).ljust(label_width)}")
        for solver in solvers:
            value = values.get((x, solver))
            if value is None:
                continue
            filled = 0 if peak <= 0 else round(value / peak * width)
            bar = _FULL * filled
            lines.append(
                f"  {solver.ljust(solver_width)} |{bar.ljust(width)}| "
                f"{value:.4g}"
            )
    return "\n".join(lines)


def render_sweep_charts(sweep: Sweep, width: int = _BAR_WIDTH) -> str:
    """All three paper panels (MaxSum, seconds, memory) as bar charts."""
    panels = [render_bars(sweep, "max_sum", width)]
    panels.append(render_bars(sweep, "seconds", width))
    if any(record.peak_mb for record in sweep.records):
        panels.append(render_bars(sweep, "peak_mb", width))
    return "\n\n".join(panels)
