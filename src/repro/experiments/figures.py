"""Per-figure experiment drivers.

One function per figure (or column of a multi-column figure) of the
paper's evaluation section. Every driver returns a
:class:`repro.experiments.runner.Sweep` (Fig. 6 returns its own richer
result type) whose ``render()`` prints the plotted series.

The mapping to the paper:

=====================  ====================================================
Driver                 Paper figure
=====================  ====================================================
fig3_vary_events       Fig. 3 column 1 (effect of |V|)
fig3_vary_users        Fig. 3 column 2 (effect of |U|)
fig3_vary_dimension    Fig. 3 column 3 (effect of d)
fig3_vary_conflicts    Fig. 3 column 4 (effect of |CF|)
fig4_vary_event_cap    Fig. 4 column 1 (effect of c_v)
fig4_vary_user_cap     Fig. 4 column 2 (effect of c_u)
fig4_distributions     Fig. 4 column 3 (effect of distribution)
fig4_real              Fig. 4 column 4 (real dataset, Auckland)
fig5_scalability       Fig. 5a-b (Greedy scalability)
fig5_effectiveness     Fig. 5c-d (approximate vs exact)
fig6_pruning           Fig. 6a-d (Prune-GEACC instrumentation)
=====================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.algorithms import ExhaustiveGEACC, PruneGEACC
from repro.core.validation import validate_arrangement
from repro.datagen.synthetic import generate_instance
from repro.datasets.meetup import MeetupCityConfig, meetup_city
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.metrics import measure
from repro.experiments.reporting import format_table
from repro.experiments.runner import DEFAULT_SOLVERS, Sweep, sweep_parameter


def _resolve(scale: ExperimentScale | str | None) -> ExperimentScale:
    if isinstance(scale, ExperimentScale):
        return scale
    return get_scale(scale)


# ----------------------------------------------------------------------
# Fig. 3: cardinality, dimensionality, conflict-set size
# ----------------------------------------------------------------------


def fig3_vary_events(
    scale=None,
    solvers=DEFAULT_SOLVERS,
    memory=True,
    checkpoint_path=None,
    resume=False,
    jobs=1,
    budget=None,
) -> Sweep:
    """Fig. 3 col 1: sweep |V|, other parameters at defaults."""
    scale = _resolve(scale)
    return sweep_parameter(
        "Fig. 3 col 1: effect of |V|",
        "|V|",
        scale.v_grid,
        lambda x, seed: generate_instance(scale.default.with_(n_events=x), seed),
        solvers=solvers,
        repeats=scale.repeats,
        memory=memory,
        checkpoint_path=checkpoint_path,
        resume=resume,
        jobs=jobs,
        budget=budget,
    )


def fig3_vary_users(
    scale=None,
    solvers=DEFAULT_SOLVERS,
    memory=True,
    checkpoint_path=None,
    resume=False,
    jobs=1,
    budget=None,
) -> Sweep:
    """Fig. 3 col 2: sweep |U|."""
    scale = _resolve(scale)
    return sweep_parameter(
        "Fig. 3 col 2: effect of |U|",
        "|U|",
        scale.u_grid,
        lambda x, seed: generate_instance(scale.default.with_(n_users=x), seed),
        solvers=solvers,
        repeats=scale.repeats,
        memory=memory,
        checkpoint_path=checkpoint_path,
        resume=resume,
        jobs=jobs,
        budget=budget,
    )


def fig3_vary_dimension(
    scale=None,
    solvers=DEFAULT_SOLVERS,
    memory=True,
    checkpoint_path=None,
    resume=False,
    jobs=1,
    budget=None,
) -> Sweep:
    """Fig. 3 col 3: sweep attribute dimensionality d."""
    scale = _resolve(scale)
    return sweep_parameter(
        "Fig. 3 col 3: effect of d",
        "d",
        scale.d_grid,
        lambda x, seed: generate_instance(scale.default.with_(d=x), seed),
        solvers=solvers,
        repeats=scale.repeats,
        memory=memory,
        checkpoint_path=checkpoint_path,
        resume=resume,
        jobs=jobs,
        budget=budget,
    )


def fig3_vary_conflicts(
    scale=None,
    solvers=DEFAULT_SOLVERS,
    memory=True,
    checkpoint_path=None,
    resume=False,
    jobs=1,
    budget=None,
) -> Sweep:
    """Fig. 3 col 4: sweep |CF| / (|V|(|V|-1)/2) from 0 to 1."""
    scale = _resolve(scale)
    return sweep_parameter(
        "Fig. 3 col 4: effect of |CF|",
        "cf_ratio",
        scale.cf_grid,
        lambda x, seed: generate_instance(
            scale.default.with_(conflict_ratio=x), seed
        ),
        solvers=solvers,
        repeats=scale.repeats,
        memory=memory,
        checkpoint_path=checkpoint_path,
        resume=resume,
        jobs=jobs,
        budget=budget,
    )


# ----------------------------------------------------------------------
# Fig. 4: capacities, distributions, real data
# ----------------------------------------------------------------------


def fig4_vary_event_capacity(
    scale=None,
    solvers=DEFAULT_SOLVERS,
    memory=True,
    checkpoint_path=None,
    resume=False,
    jobs=1,
    budget=None,
) -> Sweep:
    """Fig. 4 col 1: c_v ~ Uniform[1, max c_v], sweep max c_v."""
    scale = _resolve(scale)
    return sweep_parameter(
        "Fig. 4 col 1: effect of c_v",
        "max c_v",
        scale.cv_max_grid,
        lambda x, seed: generate_instance(scale.default.with_(cv_high=x), seed),
        solvers=solvers,
        repeats=scale.repeats,
        memory=memory,
        checkpoint_path=checkpoint_path,
        resume=resume,
        jobs=jobs,
        budget=budget,
    )


def fig4_vary_user_capacity(
    scale=None,
    solvers=DEFAULT_SOLVERS,
    memory=True,
    checkpoint_path=None,
    resume=False,
    jobs=1,
    budget=None,
) -> Sweep:
    """Fig. 4 col 2: c_u ~ Uniform[1, max c_u], sweep max c_u."""
    scale = _resolve(scale)
    return sweep_parameter(
        "Fig. 4 col 2: effect of c_u",
        "max c_u",
        scale.cu_max_grid,
        lambda x, seed: generate_instance(scale.default.with_(cu_high=x), seed),
        solvers=solvers,
        repeats=scale.repeats,
        memory=memory,
        checkpoint_path=checkpoint_path,
        resume=resume,
        jobs=jobs,
        budget=budget,
    )


#: Distribution combinations swept by Fig. 4 col 3 (the paper presents
#: Zipf attributes + Normal capacities and reports the others as similar).
DISTRIBUTION_GRID = (
    "uniform/uniform",
    "normal/uniform",
    "zipf/uniform",
    "zipf/normal",
    "uniform/normal",
)


def fig4_distributions(
    scale=None,
    solvers=DEFAULT_SOLVERS,
    memory=True,
    checkpoint_path=None,
    resume=False,
    jobs=1,
    budget=None,
) -> Sweep:
    """Fig. 4 col 3: attribute/capacity distribution combinations."""
    scale = _resolve(scale)

    def factory(combo: str, seed: int):
        attr_dist, cap_dist = combo.split("/")
        config = scale.default.with_(
            attr_distribution=attr_dist,
            cv_distribution=cap_dist,
            cu_distribution=cap_dist,
        )
        return generate_instance(config, seed)

    return sweep_parameter(
        "Fig. 4 col 3: effect of distribution",
        "attrs/caps",
        DISTRIBUTION_GRID,
        factory,
        solvers=solvers,
        repeats=scale.repeats,
        memory=memory,
        checkpoint_path=checkpoint_path,
        resume=resume,
        jobs=jobs,
        budget=budget,
    )


def fig4_real(
    scale=None,
    city: str = "auckland",
    solvers=DEFAULT_SOLVERS,
    memory=True,
    checkpoint_path=None,
    resume=False,
    jobs=1,
    budget=None,
) -> Sweep:
    """Fig. 4 col 4: the (simulated) Meetup city, sweeping |CF| ratio."""
    scale = _resolve(scale)

    def factory(ratio: float, seed: int):
        return meetup_city(
            MeetupCityConfig(city=city, conflict_ratio=ratio), seed
        )

    return sweep_parameter(
        f"Fig. 4 col 4: real dataset ({city})",
        "cf_ratio",
        scale.cf_grid,
        factory,
        solvers=solvers,
        # One repeat fewer than synthetic sweeps: the city sizes are fixed
        # (Table II) and MinCostFlow's Delta sweep dominates wall time.
        repeats=max(1, scale.repeats - 1),
        memory=memory,
        checkpoint_path=checkpoint_path,
        resume=resume,
        jobs=jobs,
        budget=budget,
    )


# ----------------------------------------------------------------------
# Fig. 5: scalability and effectiveness
# ----------------------------------------------------------------------


def fig5_scalability(
    scale=None, memory=True, checkpoint_path=None, resume=False, jobs=1, budget=None
) -> Sweep:
    """Fig. 5a-b: Greedy-GEACC over a |V| x |U| grid (index streams).

    Follows the paper: only Greedy (MinCostFlow is not scalable),
    ``max c_v`` raised because |U| is large.
    """
    scale = _resolve(scale)
    grid = [
        (v, u) for v in scale.scalability_v_grid for u in scale.scalability_u_grid
    ]

    def factory(point: tuple[int, int], seed: int):
        v, u = point
        config = scale.default.with_(
            n_events=v, n_users=u, cv_high=scale.scalability_cv_max
        )
        return generate_instance(config, seed)

    return sweep_parameter(
        "Fig. 5a-b: Greedy-GEACC scalability",
        "(|V|, |U|)",
        grid,
        factory,
        solvers=("greedy",),
        repeats=max(1, scale.repeats - 1),
        memory=memory,
        checkpoint_path=checkpoint_path,
        resume=resume,
        jobs=jobs,
        budget=budget,
    )


def fig5_effectiveness(
    scale=None, memory=False, checkpoint_path=None, resume=False, jobs=1, budget=None
) -> Sweep:
    """Fig. 5c-d: approximation quality against the exact optimum.

    The paper's configuration: |V|=5, |U|=15, c_v ~ U[1, 10], Table III
    defaults otherwise, sweeping the conflict ratio. The ``ilp`` series
    is the exact optimum the paper plots as OPT.

    The exact oracle here is the MILP solver rather than Prune-GEACC:
    branch-and-bound with the Lemma 6 bound needs >10^7 search nodes on
    some seeds of these instances -- hours in pure Python, where the
    authors' C++ absorbed it. The optimum values are identical by
    construction (cross-checked in tests); Prune-GEACC's own running-time
    behaviour is measured in Fig. 6 and in the bound ablation. Recorded
    as a deviation in EXPERIMENTS.md.
    """
    scale = _resolve(scale)
    base = scale.effectiveness_config

    return sweep_parameter(
        "Fig. 5c-d: approximate vs exact",
        "cf_ratio",
        scale.cf_grid,
        lambda x, seed: generate_instance(base.with_(conflict_ratio=x), seed),
        solvers=("mincostflow", "greedy", "ilp"),
        repeats=scale.repeats,
        memory=memory,
        checkpoint_path=checkpoint_path,
        resume=resume,
        jobs=jobs,
        budget=budget,
    )


# ----------------------------------------------------------------------
# Fig. 6: pruning instrumentation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Fig6Record:
    """One (cf_ratio, |U|, algorithm) instrumentation row."""

    cf_ratio: float
    n_users: int
    algorithm: str
    seconds: float
    invocations: float
    complete_searches: float
    average_prune_depth: float
    max_depth: float
    max_sum: float


@dataclass
class Fig6Result:
    """All four panels of Fig. 6."""

    records: list[Fig6Record] = field(default_factory=list)

    def render(self) -> str:
        headers = [
            "cf_ratio", "|U|", "algorithm", "seconds", "invocations",
            "complete", "avg prune depth", "max depth",
        ]
        rows = [
            [
                r.cf_ratio, r.n_users, r.algorithm, r.seconds, r.invocations,
                r.complete_searches, r.average_prune_depth, r.max_depth,
            ]
            for r in self.records
        ]
        return "== Fig. 6: Prune-GEACC vs exhaustive ==\n" + format_table(
            headers, rows
        )


def fig6_pruning(scale=None) -> Fig6Result:
    """Fig. 6a-d: prune depth, time, complete searches, invocations.

    Panel (a) runs Prune-GEACC at every (cf_ratio, |U|) point; panels
    (b)-(d) additionally run the exhaustive baseline at the smaller |U|
    (the paper uses |V|=5, |U|=10; the ``scaled`` grid keeps c_u = 1 so
    the exhaustive tree stays enumerable -- see EXPERIMENTS.md).
    """
    scale = _resolve(scale)
    result = Fig6Result()
    base = scale.default.with_(
        n_events=scale.fig6_n_events,
        cv_high=10,
        cu_high=scale.fig6_cu_high,
    )
    repeats = scale.repeats
    for cf_ratio in scale.cf_grid:
        for n_users in scale.fig6_u_values:
            config = base.with_(n_users=n_users, conflict_ratio=cf_ratio)
            algorithms = [("prune", PruneGEACC)]
            if n_users == scale.fig6_exhaustive_users:
                algorithms.append(("exhaustive", ExhaustiveGEACC))
            for name, cls in algorithms:
                totals = [0.0] * 6
                for seed in range(repeats):
                    instance = generate_instance(config, seed)
                    solver = cls()
                    run = measure(lambda: solver.solve(instance), memory=False)
                    validate_arrangement(run.result)
                    stats = solver.stats
                    totals[0] += run.seconds
                    totals[1] += stats.invocations
                    totals[2] += stats.complete_searches
                    totals[3] += stats.average_prune_depth
                    totals[4] += stats.max_depth
                    totals[5] += run.result.max_sum()
                result.records.append(
                    Fig6Record(
                        cf_ratio=cf_ratio,
                        n_users=n_users,
                        algorithm=name,
                        seconds=totals[0] / repeats,
                        invocations=totals[1] / repeats,
                        complete_searches=totals[2] / repeats,
                        average_prune_depth=totals[3] / repeats,
                        max_depth=totals[4] / repeats,
                        max_sum=totals[5] / repeats,
                    )
                )
    return result


ALL_FIGURES = {
    "fig3-events": fig3_vary_events,
    "fig3-users": fig3_vary_users,
    "fig3-dimension": fig3_vary_dimension,
    "fig3-conflicts": fig3_vary_conflicts,
    "fig4-event-capacity": fig4_vary_event_capacity,
    "fig4-user-capacity": fig4_vary_user_capacity,
    "fig4-distributions": fig4_distributions,
    "fig4-real": fig4_real,
    "fig5-scalability": fig5_scalability,
    "fig5-effectiveness": fig5_effectiveness,
    "fig6-pruning": fig6_pruning,
}
