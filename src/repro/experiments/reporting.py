"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table.

    Floats are shown with four significant decimals; None as ``-``.
    """
    def cell(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
