"""One-shot reproduction report: every table and figure, one document.

:func:`run_full_report` executes every driver in
:data:`repro.experiments.figures.ALL_FIGURES` plus the Table I/II/III
regenerations at a chosen scale and renders a single markdown document
with all series — the programmatic equivalent of running the whole
benchmark suite, minus pytest. Used by ``geacc reproduce``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.algorithms import GreedyGEACC, MinCostFlowGEACC, PruneGEACC
from repro.core.toy import (
    GREEDY_MAXSUM,
    MINCOSTFLOW_MAXSUM,
    OPTIMAL_MAXSUM,
    toy_instance,
)
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.tables import table2_real_datasets, table3_synthetic_config


@dataclass
class ReportSection:
    """One figure/table block of the report."""

    title: str
    body: str
    seconds: float


@dataclass
class ReproductionReport:
    """All sections plus provenance."""

    scale_name: str
    sections: list[ReportSection] = field(default_factory=list)
    total_seconds: float = 0.0

    def to_markdown(self) -> str:
        lines = [
            "# GEACC reproduction report",
            "",
            f"Scale: `{self.scale_name}`. Total wall time: "
            f"{self.total_seconds:.1f}s. One section per table/figure of "
            "the paper's evaluation; see EXPERIMENTS.md for the "
            "paper-vs-measured analysis.",
            "",
        ]
        for section in self.sections:
            lines.append(f"## {section.title}")
            lines.append("")
            lines.append("```")
            lines.append(section.body)
            lines.append("```")
            lines.append(f"_({section.seconds:.1f}s)_")
            lines.append("")
        return "\n".join(lines)


def _table1_section() -> str:
    instance = toy_instance()
    rows = [
        ("Prune-GEACC (optimal)", PruneGEACC().solve(instance).max_sum(),
         OPTIMAL_MAXSUM),
        ("Greedy-GEACC", GreedyGEACC().solve(instance).max_sum(),
         GREEDY_MAXSUM),
        ("MinCostFlow-GEACC", MinCostFlowGEACC().solve(instance).max_sum(),
         MINCOSTFLOW_MAXSUM),
    ]
    lines = ["Table I worked example -- measured vs paper:"]
    for name, measured, expected in rows:
        status = "OK" if abs(measured - expected) < 1e-9 else "MISMATCH"
        lines.append(f"  {name:24s} {measured:.2f}  (paper {expected})  {status}")
    return "\n".join(lines)


def run_full_report(
    scale: ExperimentScale | str | None = None,
    figures: list[str] | None = None,
) -> ReproductionReport:
    """Run all (or selected) drivers and collect a report.

    Args:
        scale: Scale object or name (default: the ``REPRO_SCALE``
            environment selection).
        figures: Optional subset of :data:`ALL_FIGURES` keys.
    """
    if not isinstance(scale, ExperimentScale):
        scale = get_scale(scale)
    report = ReproductionReport(scale_name=scale.name)
    started = time.perf_counter()

    static_sections = [
        ("Table I (worked example)", _table1_section),
        ("Table II (real datasets)", table2_real_datasets),
        ("Table III (synthetic configuration)", table3_synthetic_config),
    ]
    for title, producer in static_sections:
        t0 = time.perf_counter()
        body = producer()
        report.sections.append(
            ReportSection(title, body, time.perf_counter() - t0)
        )

    selected = figures if figures is not None else sorted(ALL_FIGURES)
    for name in selected:
        driver = ALL_FIGURES[name]
        t0 = time.perf_counter()
        result = driver(scale)
        report.sections.append(
            ReportSection(name, result.render(), time.perf_counter() - t0)
        )

    report.total_seconds = time.perf_counter() - started
    return report
