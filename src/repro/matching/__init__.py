"""Classical bipartite-matching substrate.

The paper positions GEACC against maximum-weight bipartite matching
([2][3] in its related work): with no conflicts and all capacities 1,
GEACC *is* that classical problem. This subpackage implements the
classics from scratch so that special case can be cross-checked
end-to-end:

* :func:`repro.matching.hungarian.max_weight_matching` -- the Hungarian
  algorithm (Jonker-Volgenant style shortest augmenting paths) for
  maximum-weight bipartite matching;
* :func:`repro.matching.hopcroft_karp.maximum_matching` -- Hopcroft-Karp
  maximum-cardinality bipartite matching.

``tests/property`` verifies that GEACC solvers on conflict-free
unit-capacity instances agree with these references.
"""

from repro.matching.hungarian import max_weight_matching
from repro.matching.hopcroft_karp import maximum_matching

__all__ = ["max_weight_matching", "maximum_matching"]
