"""Maximum-weight bipartite matching via shortest augmenting paths.

Solves ``max sum w[i, j] x[i, j]`` over matchings of a (possibly
rectangular) weight matrix, where vertices may stay unmatched -- the
classical problem the paper cites as the conflict-free, unit-capacity
special case of GEACC.

Implementation: the assignment network with unit capacities and costs
``max_w - w`` is handed to the dense successive-shortest-paths solver
(:class:`repro.flow.dense_bipartite.DenseBipartiteMinCostFlow`, the same
engine behind MinCostFlow-GEACC). Successive augmenting-path costs are
non-decreasing, so the maximum-*weight* (not necessarily
maximum-cardinality) matching is reached exactly when the next path would
cost ``>= max_w``, i.e. add non-positive weight. This is the Hungarian
algorithm in its successive-shortest-path (Jonker-Volgenant) form.
"""

from __future__ import annotations

import numpy as np

from repro.flow.dense_bipartite import DenseBipartiteMinCostFlow

_EPS = 1e-12


def max_weight_matching(weights: np.ndarray) -> tuple[list[tuple[int, int]], float]:
    """Maximum-weight matching of a bipartite graph.

    Args:
        weights: ``(n_left, n_right)`` weight matrix. Pairs with weight
            <= 0 are never part of the reported matching (they can never
            increase the total).

    Returns:
        ``(pairs, total)`` -- matched ``(left, right)`` pairs sorted by
        left index, and the sum of their weights.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    n_left, n_right = weights.shape
    if n_left == 0 or n_right == 0:
        return [], 0.0
    peak = float(weights.max())
    if peak <= 0:
        return [], 0.0

    solver = DenseBipartiteMinCostFlow(
        peak - weights,
        np.ones(n_left, dtype=np.int64),
        np.ones(n_right, dtype=np.int64),
    )
    # Each unit of flow adds weight (peak - path_cost); stop when the
    # marginal weight would be <= 0.
    solver.run(stop_cost=peak - _EPS)
    lefts, rights = np.nonzero(solver.flow & (weights > 0))
    pairs = sorted(zip(lefts.tolist(), rights.tolist()))
    total = float(sum(weights[i, j] for i, j in pairs))
    return pairs, total
