"""Hopcroft-Karp maximum-cardinality bipartite matching.

O(E sqrt(V)): repeated phases of BFS layering plus a DFS that augments a
maximal set of vertex-disjoint shortest augmenting paths.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

_INF = float("inf")


def maximum_matching(
    n_left: int, n_right: int, edges: Iterable[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Maximum-cardinality matching of the bipartite graph ``edges``.

    Args:
        n_left: Number of left vertices (0-based indices).
        n_right: Number of right vertices.
        edges: Iterable of ``(left, right)`` pairs.

    Returns:
        Matched ``(left, right)`` pairs sorted by left index.

    Raises:
        ValueError: If an edge references an out-of-range vertex.
    """
    adjacency: list[list[int]] = [[] for _ in range(n_left)]
    for left, right in edges:
        if not 0 <= left < n_left or not 0 <= right < n_right:
            raise ValueError(f"edge ({left}, {right}) out of range")
        adjacency[left].append(right)

    match_left = [-1] * n_left
    match_right = [-1] * n_right

    def bfs_layers() -> bool:
        queue = deque()
        layer = [_INF] * n_left
        for left in range(n_left):
            if match_left[left] == -1:
                layer[left] = 0
                queue.append(left)
        found_free = False
        while queue:
            left = queue.popleft()
            for right in adjacency[left]:
                nxt = match_right[right]
                if nxt == -1:
                    found_free = True
                elif layer[nxt] is _INF:
                    layer[nxt] = layer[left] + 1
                    queue.append(nxt)
        self_layers[:] = layer
        return found_free

    def dfs_augment(left: int) -> bool:
        for right in adjacency[left]:
            nxt = match_right[right]
            if nxt == -1 or (
                self_layers[nxt] == self_layers[left] + 1 and dfs_augment(nxt)
            ):
                match_left[left] = right
                match_right[right] = left
                return True
        self_layers[left] = _INF
        return False

    self_layers: list[float] = [_INF] * n_left
    while bfs_layers():
        for left in range(n_left):
            if match_left[left] == -1:
                dfs_augment(left)

    return sorted(
        (left, match_left[left]) for left in range(n_left) if match_left[left] != -1
    )
