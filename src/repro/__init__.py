"""repro: reproduction of "Conflict-Aware Event-Participant Arrangement".

(She, Tong, Chen, Cao -- ICDE 2015.)

The library implements the GEACC problem (Global Event-participant
Arrangement with Conflict and Capacity) and everything the paper builds
or depends on:

* the problem model -- events/users with capacities, conflict graphs,
  Eq. (1) similarity (:mod:`repro.core`);
* the three algorithms -- Greedy-GEACC, MinCostFlow-GEACC and the exact
  Prune-GEACC, plus the random baselines and a local-search extension
  (:mod:`repro.core.algorithms`);
* substrates -- a successive-shortest-path min-cost-flow solver
  (:mod:`repro.flow`) and incremental nearest-neighbour indexes
  (:mod:`repro.index`);
* workloads -- Table III synthetic generators (:mod:`repro.datagen`) and
  the simulated Meetup city datasets of Table II
  (:mod:`repro.datasets`);
* the experiment harness regenerating every figure
  (:mod:`repro.experiments`);
* the anytime robustness harness -- execution budgets, the
  ``optimal | feasible-timeout | failed`` outcome taxonomy, and the
  degradation ladder (:mod:`repro.robustness`, ``docs/robustness.md``).

Quickstart::

    from repro import GreedyGEACC, generate_instance

    instance = generate_instance()          # Table III defaults
    arrangement = GreedyGEACC().solve(instance)
    print(arrangement.max_sum(), len(arrangement))
"""

from repro.core.conflicts import ConflictGraph
from repro.core.model import Arrangement, Event, Instance, User
from repro.core.validation import is_feasible, validate_arrangement
from repro.core.algorithms import (
    SOLVERS,
    ExhaustiveGEACC,
    GreedyGEACC,
    LocalSearchGEACC,
    MinCostFlowGEACC,
    OnlineArranger,
    OnlineGreedyGEACC,
    PruneGEACC,
    RandomU,
    RandomV,
    Solver,
    get_solver,
)
from repro.core.analysis import ArrangementStats, analyze
from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.datasets.meetup import MeetupCityConfig, meetup_city
from repro.exceptions import (
    BudgetExceededError,
    InfeasibleArrangementError,
    InvalidInstanceError,
    ReproError,
    SolverFailedError,
)
from repro.robustness import (
    Budget,
    FailureRecord,
    Outcome,
    SolveResult,
    run_with_budget,
    solve_with_ladder,
)

__version__ = "1.0.0"

__all__ = [
    "Arrangement",
    "ConflictGraph",
    "Event",
    "Instance",
    "User",
    "Solver",
    "SOLVERS",
    "get_solver",
    "GreedyGEACC",
    "MinCostFlowGEACC",
    "PruneGEACC",
    "ExhaustiveGEACC",
    "RandomV",
    "RandomU",
    "LocalSearchGEACC",
    "OnlineArranger",
    "OnlineGreedyGEACC",
    "ArrangementStats",
    "analyze",
    "SyntheticConfig",
    "generate_instance",
    "MeetupCityConfig",
    "meetup_city",
    "is_feasible",
    "validate_arrangement",
    "ReproError",
    "InvalidInstanceError",
    "InfeasibleArrangementError",
    "BudgetExceededError",
    "SolverFailedError",
    "Budget",
    "Outcome",
    "SolveResult",
    "FailureRecord",
    "run_with_budget",
    "solve_with_ladder",
    "__version__",
]
