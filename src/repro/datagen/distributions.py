"""Samplers for attribute values and capacities (Table III).

The paper generates attribute values in ``[0, T]`` (T = 10000) following
Uniform, Normal and Zipf distributions, and capacities following Uniform
and Normal distributions ("all generated capacity values are converted
into integers").

* Uniform attributes: i.i.d. on ``[0, T]``.
* Normal attributes: the paper lists two modes, ``N(T/4, T/4)`` and
  ``N(3T/4, T/4)``; we draw each entity from one of the two modes with
  equal probability (a two-cluster population), clipped to ``[0, T]``.
* Zipf attributes: skew exponent 1.3; Zipf ranks are mapped into
  ``[0, T]`` so the value distribution is heavily skewed toward 0 with a
  long tail, mirroring tag-count-style data.

Capacity samplers clip to a minimum of 1 -- a zero-capacity entity can
never be matched and the paper's statistics (e.g. Normal mu=25 for
events, mu=2 for users) presuppose usable capacities.
"""

from __future__ import annotations

import numpy as np

_ZIPF_EXPONENT = 1.3
_ZIPF_RANK_CAP = 10_000


def sample_attributes(
    rng: np.random.Generator,
    count: int,
    d: int,
    distribution: str = "uniform",
    t: float = 10_000.0,
) -> np.ndarray:
    """Sample a ``(count, d)`` attribute matrix in ``[0, T]^d``.

    Args:
        distribution: ``uniform``, ``normal`` or ``zipf`` (Table III).
    """
    if distribution == "uniform":
        return rng.uniform(0.0, t, size=(count, d))
    if distribution == "normal":
        modes = rng.integers(0, 2, size=count)
        mu = np.where(modes == 0, t / 4.0, 3.0 * t / 4.0)
        values = rng.normal(loc=mu[:, None], scale=t / 4.0, size=(count, d))
        return np.clip(values, 0.0, t)
    if distribution == "zipf":
        ranks = rng.zipf(_ZIPF_EXPONENT, size=(count, d)).astype(np.float64)
        np.clip(ranks, 1, _ZIPF_RANK_CAP, out=ranks)
        # log-rank map: rank 1 -> 0, rank cap -> T, heavy mass near 0.
        return t * np.log(ranks) / np.log(_ZIPF_RANK_CAP)
    raise ValueError(f"unknown attribute distribution {distribution!r}")


def sample_capacities(
    rng: np.random.Generator,
    count: int,
    distribution: str = "uniform",
    low: int = 1,
    high: int = 10,
    mu: float = 25.0,
    sigma: float = 12.5,
) -> np.ndarray:
    """Sample ``count`` integer capacities (>= 1).

    Args:
        distribution: ``uniform`` (inclusive ``[low, high]``) or
            ``normal`` (``N(mu, sigma)`` rounded, clipped below at 1).
    """
    if distribution == "uniform":
        if not 1 <= low <= high:
            raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
        return rng.integers(low, high + 1, size=count).astype(np.int64)
    if distribution == "normal":
        values = np.rint(rng.normal(mu, sigma, size=count)).astype(np.int64)
        return np.maximum(values, 1)
    raise ValueError(f"unknown capacity distribution {distribution!r}")
