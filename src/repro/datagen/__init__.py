"""Workload generators for the paper's synthetic evaluation (Table III)."""

from repro.datagen.distributions import (
    sample_attributes,
    sample_capacities,
)
from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.datagen.conflictgen import (
    random_conflicts,
    random_schedule_conflicts,
)

__all__ = [
    "sample_attributes",
    "sample_capacities",
    "SyntheticConfig",
    "generate_instance",
    "random_conflicts",
    "random_schedule_conflicts",
]
