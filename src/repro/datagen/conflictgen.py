"""Conflict-set generators.

The paper's experiments draw CF as a uniform fraction of all event pairs
(:func:`random_conflicts`, a thin wrapper over
:meth:`repro.core.conflicts.ConflictGraph.random`). The examples use the
more realistic mechanism the introduction motivates -- events with time
slots and venues, conflicting on overlap or infeasible travel
(:func:`random_schedule_conflicts`).
"""

from __future__ import annotations

import numpy as np

from repro.core.conflicts import ConflictGraph


def random_conflicts(
    n_events: int, ratio: float, seed: int | None = 0
) -> ConflictGraph:
    """Uniformly sample ``ratio`` of all event pairs as conflicts."""
    return ConflictGraph.random(n_events, ratio, np.random.default_rng(seed))


def random_schedule_conflicts(
    n_events: int,
    rng: np.random.Generator,
    day_hours: float = 14.0,
    min_duration: float = 1.0,
    max_duration: float = 4.0,
    city_extent: float = 30.0,
    travel_speed: float = 30.0,
) -> tuple[ConflictGraph, list[tuple[float, float]], list[tuple[float, float]]]:
    """Sample a one-day schedule and derive conflicts from it.

    Each event gets a start time within a ``day_hours``-hour window, a
    duration in ``[min_duration, max_duration]`` hours, and a venue in a
    ``city_extent`` x ``city_extent`` square (distance units consistent
    with ``travel_speed`` per hour).

    Returns:
        ``(conflict_graph, intervals, locations)`` so callers can report
        schedules alongside arrangements.
    """
    durations = rng.uniform(min_duration, max_duration, size=n_events)
    starts = rng.uniform(0.0, day_hours - durations)
    intervals = [(float(s), float(s + d)) for s, d in zip(starts, durations)]
    locations = [
        (float(x), float(y))
        for x, y in rng.uniform(0.0, city_extent, size=(n_events, 2))
    ]
    graph = ConflictGraph.from_schedule(intervals, locations, travel_speed)
    return graph, intervals, locations
