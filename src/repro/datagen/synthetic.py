"""Synthetic GEACC instance generation per Table III.

:class:`SyntheticConfig` defaults to the paper's bold settings:
``|V| = 100``, ``|U| = 1000``, ``d = 20``, uniform attributes with
``T = 10000``, ``c_v ~ Uniform[1, 50]``, ``c_u ~ Uniform[1, 4]``, and a
conflict ratio of 0.25.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.datagen.distributions import sample_attributes, sample_capacities


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic workload (Table III).

    Attribute/capacity distribution names follow
    :mod:`repro.datagen.distributions`.
    """

    n_events: int = 100
    n_users: int = 1000
    d: int = 20
    t: float = 10_000.0
    attr_distribution: str = "uniform"
    cv_distribution: str = "uniform"
    cv_low: int = 1
    cv_high: int = 50
    cv_mu: float = 25.0
    cv_sigma: float = 12.5
    cu_distribution: str = "uniform"
    cu_low: int = 1
    cu_high: int = 4
    cu_mu: float = 2.0
    cu_sigma: float = 1.0
    conflict_ratio: float = 0.25

    def with_(self, **overrides) -> "SyntheticConfig":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **overrides)


def generate_instance(
    config: SyntheticConfig = SyntheticConfig(), seed: int | None = 0
) -> Instance:
    """Sample one GEACC instance from a :class:`SyntheticConfig`.

    Args:
        seed: Seed for a fresh :class:`numpy.random.Generator`; pass a
            Generator via :func:`generate_instance_rng` for finer control.
    """
    return generate_instance_rng(config, np.random.default_rng(seed))


def generate_instance_rng(
    config: SyntheticConfig, rng: np.random.Generator
) -> Instance:
    """Sample one GEACC instance using the caller's generator."""
    event_attrs = sample_attributes(
        rng, config.n_events, config.d, config.attr_distribution, config.t
    )
    user_attrs = sample_attributes(
        rng, config.n_users, config.d, config.attr_distribution, config.t
    )
    event_capacities = sample_capacities(
        rng,
        config.n_events,
        config.cv_distribution,
        low=config.cv_low,
        high=config.cv_high,
        mu=config.cv_mu,
        sigma=config.cv_sigma,
    )
    user_capacities = sample_capacities(
        rng,
        config.n_users,
        config.cu_distribution,
        low=config.cu_low,
        high=config.cu_high,
        mu=config.cu_mu,
        sigma=config.cu_sigma,
    )
    conflicts = ConflictGraph.random(config.n_events, config.conflict_ratio, rng)
    return Instance.from_attributes(
        event_attrs,
        user_attrs,
        event_capacities,
        user_capacities,
        conflicts,
        t=config.t,
    )
