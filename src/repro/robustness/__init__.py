"""repro.robustness: budgets, anytime semantics, graceful degradation.

The execution harness that makes every registered solver safe to run
under a deadline:

* :class:`~repro.robustness.budget.Budget` -- cooperative wall-clock +
  node budgets, enforced through a ``checkpoint()`` hook threaded into
  every solver's hot loop;
* :class:`~repro.robustness.outcome.Outcome` /
  :class:`~repro.robustness.outcome.SolveResult` -- the
  ``optimal | feasible-timeout | failed`` taxonomy every budgeted solve
  ends in;
* :func:`~repro.robustness.harness.run_with_budget` -- run one solver
  under a budget, returning its validated best-so-far on timeout;
* :func:`~repro.robustness.harness.solve_with_ladder` -- the
  ``prune -> greedy -> random-u`` degradation ladder.

See ``docs/robustness.md`` for the budget model and the crash-safe
sweep-resume format built on top of this package.
"""

from repro.robustness.budget import Budget
from repro.robustness.faultfs import FaultFS, SimulatedCrash
from repro.robustness.harness import (
    DEFAULT_LADDER,
    raise_on_failure,
    run_with_budget,
    solve_with_ladder,
)
from repro.robustness.outcome import (
    FailureRecord,
    Outcome,
    SolveResult,
    is_transient,
)

__all__ = [
    "Budget",
    "DEFAULT_LADDER",
    "FailureRecord",
    "FaultFS",
    "SimulatedCrash",
    "Outcome",
    "SolveResult",
    "is_transient",
    "raise_on_failure",
    "run_with_budget",
    "solve_with_ladder",
]
