"""Fault-injecting filesystem: enumerate crash points under durability code.

The journal and snapshot layers (:mod:`repro.service.journal`,
:mod:`repro.service.snapshot`) route every byte they move to disk
through the :class:`~repro.service.journal.FileSystem` seam.
:class:`FaultFS` is the drop-in test double: a fully in-memory
filesystem that models the one thing a real crash exposes -- the gap
between **cached** state (what the process wrote) and **durable** state
(what an fsync actually pinned down).

Model:

* every file is an inode with a ``cached`` byte buffer and a
  ``durable`` buffer -- ``fsync`` copies cached over durable;
* every directory has a cached name->inode table and a durable one --
  ``fsync_dir`` commits the cached table (this is what makes a rename
  or create *findable* after a crash, exactly like a real POSIX
  directory);
* directories themselves are durable on creation (a deliberate
  simplification: the code under test only ever creates its snapshot
  directory once, up front).

Every durability-relevant operation -- create, write, flush, fsync,
rename, directory fsync, remove, truncate -- increments an operation
counter. Constructing ``FaultFS(root, crash_at=k)`` raises
:class:`SimulatedCrash` *before* operation ``k`` takes effect; with
``torn=True`` a crashing ``write`` first applies a strict prefix of its
data (the torn-write case). After the crash, :meth:`materialise` copies
either world onto a real directory:

* ``"durable"`` -- only fsync'd bytes under dir-fsync'd names: the
  *pessimistic* post-crash disk (everything the kernel was allowed to
  lose, lost);
* ``"cached"`` -- everything the process wrote, torn bytes included:
  the *optimistic* disk (nothing lost, the final write possibly torn).

A real crash lands somewhere between the two, so recovery must succeed
on both -- the sweep in ``tests/robustness/test_faultfs.py`` asserts
recovery at every ``k`` for both worlds reconstructs a digest-exact
prefix of acknowledged history.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterator

from repro.exceptions import ReproError

#: Operation kinds that consume a crash-point slot, in the order they
#: appear in :attr:`FaultFS.ops`.
OP_KINDS = ("create", "write", "flush", "fsync", "replace", "fsync_dir", "remove", "truncate")


class SimulatedCrash(ReproError):
    """The injected crash: the 'process' died before this op completed."""


class _FaultFile:
    """One inode: the cached buffer and the last-fsync'd buffer."""

    __slots__ = ("cached", "durable")

    def __init__(self) -> None:
        self.cached = bytearray()
        self.durable: bytes | None = None


class _FaultHandle:
    """File-object shim over a :class:`_FaultFile` (binary, unbuffered)."""

    def __init__(self, fs: "FaultFS", file: _FaultFile, writable: bool) -> None:
        self._fs = fs
        self._file = file
        self._writable = writable
        self._pos = 0
        self._closed = False

    def write(self, data: bytes) -> int:
        self._check_open()
        if not self._writable:
            raise OSError("handle is not writable")
        payload = bytes(data)
        file, pos = self._file, self._pos

        def effect() -> None:
            _splice(file.cached, pos, payload)

        def torn_effect() -> None:
            _splice(file.cached, pos, payload[: len(payload) // 2])

        self._fs._tick("write", effect, torn_effect)
        self._pos += len(payload)
        return len(payload)

    def flush(self) -> None:
        self._check_open()
        self._fs._tick("flush")

    def seek(self, offset: int, whence: int = 0) -> int:
        self._check_open()
        if whence == 0:
            self._pos = offset
        elif whence == 1:
            self._pos += offset
        elif whence == 2:
            self._pos = len(self._file.cached) + offset
        else:
            raise ValueError(f"bad whence {whence}")
        return self._pos

    def tell(self) -> int:
        return self._pos

    def truncate(self, size: int | None = None) -> int:
        self._check_open()
        length = self._pos if size is None else size
        file = self._file

        def effect() -> None:
            del file.cached[length:]

        self._fs._tick("truncate", effect)
        return length

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O operation on closed file")


def _splice(buffer: bytearray, pos: int, data: bytes) -> None:
    if pos > len(buffer):
        buffer.extend(b"\x00" * (pos - len(buffer)))
    buffer[pos : pos + len(data)] = data


class FaultFS:
    """In-memory ``FileSystem`` double with crash-point injection.

    Duck-types :class:`repro.service.journal.FileSystem`. All paths
    must live under ``root`` (a virtual path -- nothing is created on
    the real filesystem until :meth:`materialise`).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        crash_at: int | None = None,
        torn: bool = False,
    ) -> None:
        self.root = Path(root)
        self.crash_at = crash_at
        self.torn = torn
        self.op_count = 0
        self.crashed = False
        #: Kind of every counted operation, in order (``ops[k-1]`` is
        #: the op that crash point ``k`` lands on).
        self.ops: list[str] = []
        self._dirs: dict[str, dict[str, _FaultFile]] = {}
        self._durable_dirs: dict[str, dict[str, _FaultFile]] = {}
        self.mkdir(self.root)

    # ------------------------------------------------------------------
    # Crash-point machinery
    # ------------------------------------------------------------------

    def _tick(
        self,
        kind: str,
        effect: Callable[[], None] | None = None,
        torn_effect: Callable[[], None] | None = None,
    ) -> None:
        if self.crashed:
            raise SimulatedCrash("filesystem already crashed")
        self.op_count += 1
        self.ops.append(kind)
        if self.crash_at is not None and self.op_count == self.crash_at:
            if self.torn and torn_effect is not None:
                torn_effect()
            self.crashed = True
            raise SimulatedCrash(f"injected crash at op {self.op_count} ({kind})")
        if effect is not None:
            effect()

    # ------------------------------------------------------------------
    # The FileSystem interface
    # ------------------------------------------------------------------

    def open(self, path: str | Path, mode: str) -> _FaultHandle:
        directory, name = self._locate(path)
        if mode == "xb":
            if name in directory:
                raise FileExistsError(f"{path}: file exists")
            file = _FaultFile()
            self._tick("create", lambda: directory.__setitem__(name, file))
            return _FaultHandle(self, file, writable=True)
        if mode == "wb":
            file = _FaultFile()
            self._tick("create", lambda: directory.__setitem__(name, file))
            return _FaultHandle(self, file, writable=True)
        if mode == "r+b":
            if name not in directory:
                raise FileNotFoundError(f"{path}: no such file")
            return _FaultHandle(self, directory[name], writable=True)
        if mode == "rb":
            if name not in directory:
                raise FileNotFoundError(f"{path}: no such file")
            return _FaultHandle(self, directory[name], writable=False)
        raise ValueError(f"unsupported mode {mode!r}")

    def fsync(self, handle: _FaultHandle) -> None:
        file = handle._file

        def effect() -> None:
            file.durable = bytes(file.cached)

        self._tick("fsync", effect)

    def fsync_dir(self, directory: str | Path) -> None:
        key = str(Path(directory))
        if key not in self._dirs:
            raise FileNotFoundError(f"{directory}: no such directory")

        def effect() -> None:
            self._durable_dirs[key] = dict(self._dirs[key])

        self._tick("fsync_dir", effect)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        src_dir, src_name = self._locate(src)
        dst_dir, dst_name = self._locate(dst)
        if src_name not in src_dir:
            raise FileNotFoundError(f"{src}: no such file")
        file = src_dir[src_name]

        def effect() -> None:
            del src_dir[src_name]
            dst_dir[dst_name] = file

        self._tick("replace", effect)

    def remove(self, path: str | Path) -> None:
        directory, name = self._locate(path)
        if name not in directory:
            raise FileNotFoundError(f"{path}: no such file")
        self._tick("remove", lambda: directory.__delitem__(name))

    def read_bytes(self, path: str | Path) -> bytes:
        directory, name = self._locate(path)
        if name not in directory:
            raise FileNotFoundError(f"{path}: no such file")
        return bytes(directory[name].cached)

    def exists(self, path: str | Path) -> bool:
        key = str(Path(path))
        if key in self._dirs:
            return True
        parent = str(Path(path).parent)
        return parent in self._dirs and Path(path).name in self._dirs[parent]

    def listdir(self, path: str | Path) -> list[str]:
        key = str(Path(path))
        if key not in self._dirs:
            raise FileNotFoundError(f"{path}: no such directory")
        return list(self._dirs[key])

    def mkdir(self, path: str | Path) -> None:
        # Deliberately uncounted and immediately durable (see module
        # docstring): the code under test creates directories once,
        # before any crash-relevant traffic.
        path = Path(path)
        path.relative_to(self.root)  # raises ValueError outside the root
        for ancestor in [path, *path.parents]:
            key = str(ancestor)
            if key not in self._dirs:
                self._dirs[key] = {}
                self._durable_dirs[key] = {}
            if ancestor == self.root:
                break

    # ------------------------------------------------------------------
    # Post-crash inspection
    # ------------------------------------------------------------------

    def materialise(self, target: str | Path, world: str = "durable") -> None:
        """Copy one post-crash world onto a real directory.

        ``world="durable"``: only fsync'd bytes under dir-fsync'd names
        (the pessimistic disk). ``world="cached"``: everything written,
        torn bytes included (the optimistic disk). A file whose name is
        durable but whose content never saw an fsync materialises empty.
        """
        if world not in ("durable", "cached"):
            raise ValueError(f"unknown world {world!r}")
        target = Path(target)
        for key in self._dirs:
            (target / self._relative(key)).mkdir(parents=True, exist_ok=True)
        tables = self._durable_dirs if world == "durable" else self._dirs
        for key, entries in tables.items():
            base = target / self._relative(key)
            for name, file in entries.items():
                if world == "durable":
                    content = b"" if file.durable is None else file.durable
                else:
                    content = bytes(file.cached)
                (base / name).write_bytes(content)

    def iter_files(self, world: str = "cached") -> Iterator[tuple[str, bytes]]:
        """Yield ``(path, content)`` for every file in one world."""
        tables = self._durable_dirs if world == "durable" else self._dirs
        for key, entries in sorted(tables.items()):
            for name, file in sorted(entries.items()):
                if world == "durable":
                    yield str(Path(key) / name), b"" if file.durable is None else file.durable
                else:
                    yield str(Path(key) / name), bytes(file.cached)

    # ------------------------------------------------------------------

    def _locate(self, path: str | Path) -> tuple[dict[str, _FaultFile], str]:
        path = Path(path)
        self._relative(str(path))  # raises if outside the root
        parent = str(path.parent)
        if parent not in self._dirs:
            raise FileNotFoundError(f"{path.parent}: no such directory")
        return self._dirs[parent], path.name

    def _relative(self, key: str) -> Path:
        return Path(key).relative_to(self.root) if key != str(self.root) else Path(".")
