"""Cooperative execution budgets: wall-clock deadlines and node limits.

A :class:`Budget` bounds one solve. It is *cooperative*: the budget does
nothing by itself -- budget-aware solvers call :meth:`Budget.checkpoint`
inside their hot loop (one call per search node / heap pop / flow
augmentation), and the checkpoint raises
:class:`~repro.exceptions.BudgetExceededError` once the deadline passes
or the node budget runs out. Solvers catch that exception at the top of
their loop and return their feasible best-so-far arrangement, which the
harness (:mod:`repro.robustness.harness`) tags ``feasible-timeout``.

Deadlines are measured on ``time.monotonic()``. Wall-clock time
(``time.time()``) is never acceptable for budgets -- NTP steps and DST
jumps would fire (or silently extend) deadlines -- and ``geacc-lint``
rule R6 enforces that tree-wide.

The clock is only consulted every ``clock_stride`` checkpoints so a
checkpoint in a million-node search loop stays an integer compare in the
common case; with the default stride of 32 a 50 ms deadline is still
honoured to well under a millisecond in practice.
"""

from __future__ import annotations

import time

from repro.exceptions import BudgetExceededError


class Budget:
    """One solve's execution budget (deadline and/or node limit).

    Args:
        deadline: Wall-clock allowance in seconds (monotonic clock),
            counted from the first :meth:`checkpoint` (or an explicit
            :meth:`start`). None = no deadline.
        node_limit: Maximum number of checkpointed units of work (search
            nodes, heap pops, flow augmentations...). None = unlimited.
        clock_stride: Consult the monotonic clock every this many
            checkpoints. 1 checks every call; larger strides make the
            checkpoint cheaper but the deadline coarser.

    A budget is single-use: it belongs to one solve (or one degradation
    ladder sharing a global deadline across rungs) and keeps its counters
    afterwards for reporting.
    """

    __slots__ = ("deadline", "node_limit", "clock_stride", "nodes",
                 "_started_at", "_exhausted_reason")

    def __init__(
        self,
        deadline: float | None = None,
        node_limit: int | None = None,
        clock_stride: int = 32,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        if node_limit is not None and node_limit < 0:
            raise ValueError(f"node_limit must be >= 0, got {node_limit}")
        if clock_stride < 1:
            raise ValueError(f"clock_stride must be >= 1, got {clock_stride}")
        self.deadline = deadline
        self.node_limit = node_limit
        self.clock_stride = clock_stride
        self.nodes = 0
        self._started_at: float | None = None
        self._exhausted_reason: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Budget":
        """Anchor the deadline at *now* (idempotent); returns ``self``."""
        if self._started_at is None:
            self._started_at = time.monotonic()
        return self

    @property
    def started(self) -> bool:
        return self._started_at is not None

    @property
    def exhausted(self) -> bool:
        """True once the budget ran out (checkpoint raised or marked)."""
        return self._exhausted_reason is not None

    @property
    def exhausted_reason(self) -> str | None:
        """Human-readable reason the budget ran out, or None."""
        return self._exhausted_reason

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def remaining_seconds(self) -> float | None:
        """Seconds left on the deadline (clamped at 0), or None."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    def remaining_nodes(self) -> int | None:
        """Nodes left on the node budget (clamped at 0), or None."""
        if self.node_limit is None:
            return None
        return max(0, self.node_limit - self.nodes)

    # ------------------------------------------------------------------
    # The hot-loop hook
    # ------------------------------------------------------------------

    def checkpoint(self, weight: int = 1) -> None:
        """Account one unit of work; raise once the budget is exhausted.

        Args:
            weight: Number of units this checkpoint represents (e.g. a
                vectorised step covering ``weight`` elementary nodes).

        Raises:
            BudgetExceededError: On the first checkpoint at or past the
                node limit or the deadline. Subsequent checkpoints keep
                raising, so a solver that swallowed one exhaustion cannot
                silently keep burning time.
        """
        if self._exhausted_reason is not None:
            raise BudgetExceededError(self._exhausted_reason)
        self.nodes += weight
        if self.node_limit is not None and self.nodes > self.node_limit:
            self.mark_exhausted(
                f"node budget exhausted ({self.nodes} > {self.node_limit})"
            )
            raise BudgetExceededError(self._exhausted_reason)
        if self.deadline is not None:
            if self._started_at is None:
                self.start()
            # Only hit the clock every `clock_stride` nodes; always on the
            # first node so a zero deadline fires immediately.
            if self.nodes % self.clock_stride == 0 or self.nodes == 1:
                if self.elapsed() >= self.deadline:
                    self.mark_exhausted(
                        f"deadline exhausted ({self.deadline:.3f}s, "
                        f"{self.nodes} nodes)"
                    )
                    raise BudgetExceededError(self._exhausted_reason)

    def expired(self) -> bool:
        """Non-raising probe: would the next checkpoint raise?"""
        if self._exhausted_reason is not None:
            return True
        if self.node_limit is not None and self.nodes >= self.node_limit:
            return True
        if self.deadline is not None and self.started:
            return self.elapsed() >= self.deadline
        return False

    def mark_exhausted(self, reason: str) -> None:
        """Record exhaustion detected outside :meth:`checkpoint`.

        Solvers that delegate to an engine with its own time limit (e.g.
        the MILP backend) call this when the engine reports a timeout, so
        the harness sees a consistent ``exhausted`` flag.
        """
        if self._exhausted_reason is None:
            self._exhausted_reason = reason

    def __repr__(self) -> str:
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}s")
        if self.node_limit is not None:
            parts.append(f"node_limit={self.node_limit}")
        parts.append(f"nodes={self.nodes}")
        if self.exhausted:
            parts.append("exhausted")
        return f"Budget({', '.join(parts)})"
