"""The anytime solver harness: budgeted solves and degradation ladders.

:func:`run_with_budget` wraps any registered solver with a
:class:`~repro.robustness.budget.Budget` and *always* returns a
:class:`~repro.robustness.outcome.SolveResult` -- optimal, best-so-far
on timeout, or a structured failure -- never an exception. This is the
per-request entry point a production deployment would sit behind: a
deadline comes in, a feasible arrangement (possibly the empty one) comes
out, tagged with how it was obtained.

:func:`solve_with_ladder` adds graceful degradation: a ladder of solvers
(default ``prune -> greedy -> random-u``) sharing one global budget.
Each rung that fails falls through to the next, carrying a
:class:`~repro.robustness.outcome.FailureRecord`; a rung that merely
times out already answers with its feasible best-so-far (Prune-GEACC's
floor is its Greedy warm-start seed), so the ladder stops there.
"""

from __future__ import annotations

import inspect
import time
from collections.abc import Mapping, Sequence

from repro.core.model import Arrangement, Instance
from repro.core.validation import validate_arrangement
from repro.exceptions import (
    BudgetExceededError,
    InfeasibleArrangementError,
    SolverFailedError,
)
from repro.robustness.budget import Budget
from repro.robustness.outcome import FailureRecord, Outcome, SolveResult, is_transient

#: The default degradation ladder: exact, then the paper's scalable
#: approximation, then the cheapest baseline that can still answer.
DEFAULT_LADDER: tuple[str, ...] = ("prune", "greedy", "random-u")


def _resolve_solver(solver: object, kwargs: Mapping[str, object] | None = None):
    """Instantiate a registry name, or pass a Solver instance through."""
    if isinstance(solver, str):
        from repro.core.algorithms.base import get_solver

        return get_solver(solver, **dict(kwargs or {}))
    return solver


def _solver_name(solver: object) -> str:
    name = getattr(solver, "name", None)
    if isinstance(name, str) and name and name != "abstract":
        return name
    return type(solver).__name__


def _call_solve(solver, instance: Instance, budget: Budget) -> Arrangement:
    """Call ``solver.solve``, passing the budget when the solver takes one.

    Legacy / third-party solvers whose ``solve`` predates the budget
    parameter still run -- they just cannot be preempted cooperatively.
    """
    try:
        parameters = inspect.signature(solver.solve).parameters
    except (TypeError, ValueError):  # builtins / C-implemented callables
        parameters = {}
    if "budget" in parameters:
        return solver.solve(instance, budget=budget)
    return solver.solve(instance)


def run_with_budget(
    solver: object,
    instance: Instance,
    budget: Budget | None = None,
    *,
    timeout: float | None = None,
    node_limit: int | None = None,
    solver_kwargs: Mapping[str, object] | None = None,
    validate: bool = True,
) -> SolveResult:
    """Run one solver under a budget; never raises.

    Args:
        solver: Registry name (``"prune"``) or a Solver instance.
        budget: An existing budget to run under (a ladder passes its
            shared one). Mutually exclusive with ``timeout``/``node_limit``.
        timeout: Wall-clock allowance in seconds (monotonic clock).
        node_limit: Cap on checkpointed work units.
        solver_kwargs: Constructor arguments when ``solver`` is a name.
        validate: Validate the arrangement before reporting it feasible
            (an infeasible output is converted into a ``failed`` result).

    Returns:
        A :class:`SolveResult`; ``outcome`` is ``optimal`` when the solver
        completed, ``feasible-timeout`` when the budget ran out (the
        arrangement is the validated best-so-far, possibly empty), and
        ``failed`` when the solver raised or produced infeasible output.
    """
    if budget is not None and (timeout is not None or node_limit is not None):
        raise ValueError("pass either an existing budget or timeout/node_limit")
    if budget is None:
        budget = Budget(deadline=timeout, node_limit=node_limit)
    budget.start()
    started = time.monotonic()

    try:
        instantiated = _resolve_solver(solver, solver_kwargs)
    except Exception as exc:  # unknown name, bad constructor args
        return SolveResult(
            arrangement=None,
            outcome=Outcome.FAILED,
            solver=str(solver),
            seconds=time.monotonic() - started,
            nodes=budget.nodes,
            failures=(
                FailureRecord(
                    solver=str(solver),
                    error_type=type(exc).__name__,
                    message=str(exc),
                    transient=False,
                ),
            ),
        )
    name = _solver_name(instantiated)

    try:
        arrangement: Arrangement | None = _call_solve(instantiated, instance, budget)
    except BudgetExceededError:
        # The solver let the exhaustion escape instead of returning its
        # best-so-far; the empty arrangement is the universal feasible
        # floor, so degrade to it rather than erroring.
        arrangement = Arrangement(instance)
    except Exception as exc:
        return SolveResult(
            arrangement=None,
            outcome=Outcome.FAILED,
            solver=name,
            seconds=time.monotonic() - started,
            nodes=budget.nodes,
            failures=(
                FailureRecord(
                    solver=name,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    transient=is_transient(exc),
                ),
            ),
        )

    if validate and arrangement is not None:
        try:
            validate_arrangement(arrangement)
        except InfeasibleArrangementError as exc:
            return SolveResult(
                arrangement=None,
                outcome=Outcome.FAILED,
                solver=name,
                seconds=time.monotonic() - started,
                nodes=budget.nodes,
                failures=(
                    FailureRecord(
                        solver=name,
                        error_type=type(exc).__name__,
                        message=str(exc),
                        transient=False,
                    ),
                ),
            )

    outcome = Outcome.FEASIBLE_TIMEOUT if budget.exhausted else Outcome.OPTIMAL
    return SolveResult(
        arrangement=arrangement,
        outcome=outcome,
        solver=name,
        seconds=time.monotonic() - started,
        nodes=budget.nodes,
        failures=(),
    )


def solve_with_ladder(
    instance: Instance,
    ladder: Sequence[object] = DEFAULT_LADDER,
    *,
    timeout: float | None = None,
    node_limit: int | None = None,
    solver_kwargs: Mapping[str, Mapping[str, object]] | None = None,
    validate: bool = True,
) -> SolveResult:
    """Solve with graceful degradation down a ladder of solvers.

    All rungs share ONE budget: the deadline is global, so a rung that
    burns the whole allowance leaves the remaining rungs only their
    empty-arrangement floor (still feasible, still an answer).

    Args:
        ladder: Solver names and/or instances, best first.
        solver_kwargs: Per-name constructor arguments for string rungs.
        timeout / node_limit / validate: As in :func:`run_with_budget`.

    Returns:
        The first rung's result that produced a feasible arrangement
        (``optimal`` or ``feasible-timeout``), with the failure records
        of every earlier rung attached; if every rung failed, a
        ``failed`` result carrying all records.
    """
    if not ladder:
        raise ValueError("ladder must name at least one solver")
    budget = Budget(deadline=timeout, node_limit=node_limit).start()
    started = time.monotonic()
    failures: list[FailureRecord] = []
    kwargs_by_name = dict(solver_kwargs or {})
    for rung in ladder:
        rung_kwargs = kwargs_by_name.get(rung) if isinstance(rung, str) else None
        result = run_with_budget(
            rung,
            instance,
            budget=budget,
            solver_kwargs=rung_kwargs,
            validate=validate,
        )
        failures.extend(result.failures)
        if result.ok:
            return SolveResult(
                arrangement=result.arrangement,
                outcome=result.outcome,
                solver=result.solver,
                seconds=time.monotonic() - started,
                nodes=budget.nodes,
                failures=tuple(failures),
            )
    return SolveResult(
        arrangement=None,
        outcome=Outcome.FAILED,
        solver="",
        seconds=time.monotonic() - started,
        nodes=budget.nodes,
        failures=tuple(failures),
    )


def raise_on_failure(result: SolveResult) -> SolveResult:
    """Convert a ``failed`` result back into an exception, for callers
    that prefer raising APIs; passes successful results through."""
    if result.outcome is Outcome.FAILED:
        details = "; ".join(
            f"{f.solver}: {f.error_type}: {f.message}" for f in result.failures
        )
        raise SolverFailedError(
            f"no solver produced a feasible arrangement ({details})",
            failures=result.failures,
        )
    return result
