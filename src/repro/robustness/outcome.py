"""Outcome taxonomy and structured results for budgeted solves.

Every budgeted solve ends in exactly one of three :class:`Outcome`\\ s:

* ``optimal`` -- the solver ran to completion within its budget. For the
  exact solvers (``prune``, ``ilp``, ``exhaustive``) the arrangement is
  a proven optimum; for the approximation algorithms it means "the
  algorithm terminated normally" (their usual approximation guarantee
  applies, nothing stronger).
* ``feasible-timeout`` -- the budget ran out first; the arrangement is
  the solver's validated best-so-far (possibly empty, always feasible).
* ``failed`` -- the solver raised, or produced an infeasible
  arrangement; ``arrangement`` is None and :attr:`SolveResult.failures`
  says why.

The harness (:mod:`repro.robustness.harness`) guarantees a
:class:`SolveResult` is always returned -- never an exception -- so
callers under a per-request deadline can serve *something* on every
path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.model import Arrangement


class Outcome(enum.Enum):
    """How a budgeted solve ended (see module docstring)."""

    OPTIMAL = "optimal"
    FEASIBLE_TIMEOUT = "feasible-timeout"
    FAILED = "failed"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FailureRecord:
    """One solver failure, structured for logs and sweep checkpoints.

    Attributes:
        solver: Registry name (or repr) of the failing solver.
        error_type: Exception class name (``"RuntimeError"``...).
        message: ``str(exception)``.
        transient: Whether a retry with a fresh seed is worth attempting
            (resource pressure, flaky subprocess) as opposed to a
            deterministic bug that will fail identically again.
        attempt: 0-based attempt index that produced this failure.
    """

    solver: str
    error_type: str
    message: str
    transient: bool = False
    attempt: int = 0

    def to_json(self) -> dict:
        """Plain-dict form for JSONL checkpoints."""
        return {
            "solver": self.solver,
            "error_type": self.error_type,
            "message": self.message,
            "transient": self.transient,
            "attempt": self.attempt,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FailureRecord":
        return cls(
            solver=data["solver"],
            error_type=data["error_type"],
            message=data["message"],
            transient=bool(data.get("transient", False)),
            attempt=int(data.get("attempt", 0)),
        )


#: Exception types whose failures are considered transient (worth a
#: bounded retry with a fresh seed). Everything else -- assertion
#: failures, invalid instances, infeasible outputs -- is deterministic
#: and retried at most once only because the sweep regenerates the
#: instance with a fresh seed.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (MemoryError, OSError)


def is_transient(error: BaseException) -> bool:
    """Heuristic: is this failure worth a retry with a fresh seed?

    Explicitly transient system errors always qualify; generic runtime
    errors (the classic "flaky dependency" shape) qualify too, while
    library-level contract violations (``ReproError`` subclasses other
    than budget exhaustion, ``ValueError``, ``TypeError``,
    ``AssertionError``) do not -- they would fail identically again.
    """
    from repro.exceptions import ReproError

    if isinstance(error, TRANSIENT_ERRORS):
        return True
    if isinstance(error, (ReproError, ValueError, TypeError, AssertionError)):
        return False
    return isinstance(error, Exception)


@dataclass(frozen=True)
class SolveResult:
    """The harness's answer for one budgeted solve (or ladder of them).

    Attributes:
        arrangement: Feasible arrangement, or None iff ``outcome`` is
            ``failed``.
        outcome: See :class:`Outcome`.
        solver: Name of the solver that produced ``arrangement`` (for a
            degradation ladder: the rung that answered; empty string
            when every rung failed).
        seconds: Wall time spent (monotonic clock), including failed
            rungs.
        nodes: Checkpointed work units accounted by the budget.
        failures: Structured records of every failed attempt/rung on the
            way to this result.
    """

    arrangement: "Arrangement | None"
    outcome: Outcome
    solver: str
    seconds: float
    nodes: int = 0
    failures: tuple[FailureRecord, ...] = field(default=())

    @property
    def ok(self) -> bool:
        """True when a feasible arrangement was produced."""
        return self.arrangement is not None and self.outcome is not Outcome.FAILED

    def max_sum(self) -> float:
        """MaxSum of the arrangement (0.0 for a failed result)."""
        if self.arrangement is None:
            return 0.0
        return self.arrangement.max_sum()

    def __repr__(self) -> str:
        size = len(self.arrangement) if self.arrangement is not None else 0
        return (
            f"SolveResult(outcome={self.outcome}, solver={self.solver!r}, "
            f"|M|={size}, seconds={self.seconds:.3f}, nodes={self.nodes}, "
            f"failures={len(self.failures)})"
        )
