"""Micro-benchmarks: per-solver kernel timings at the default workload.

These use pytest-benchmark's statistics (multiple rounds) on a fixed
instance, complementing the single-shot figure regenerations.
"""

import pytest

from repro.core.algorithms import get_solver
from repro.datagen.synthetic import generate_instance
from repro.flow.dense_bipartite import DenseBipartiteMinCostFlow
from repro.index import make_index


@pytest.fixture(scope="module")
def default_instance(scale):
    instance = generate_instance(scale.default, seed=0)
    instance.sims  # materialise once so solves measure algorithm time only
    return instance


@pytest.mark.parametrize("solver_name", ["greedy", "random-v", "random-u"])
def test_bench_fast_solvers(benchmark, default_instance, solver_name):
    solver = get_solver(solver_name)
    arrangement = benchmark(lambda: solver.solve(default_instance))
    assert len(arrangement) > 0


def test_bench_mincostflow(benchmark, default_instance):
    solver = get_solver("mincostflow")
    arrangement = benchmark.pedantic(
        lambda: solver.solve(default_instance), rounds=1, iterations=1
    )
    assert len(arrangement) > 0


def test_bench_dense_flow_kernel(benchmark, default_instance):
    costs = 1.0 - default_instance.sims

    def run():
        flow = DenseBipartiteMinCostFlow(
            costs,
            default_instance.event_capacities,
            default_instance.user_capacities,
        )
        flow.run(stop_cost=1.0 - 1e-12)
        return flow.total_flow

    routed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert routed > 0


@pytest.mark.parametrize("kind", ["linear", "chunked", "kdtree", "idistance"])
def test_bench_index_build_and_query(benchmark, default_instance, kind):
    points = default_instance.user_attributes
    query = default_instance.event_attributes[0]

    def run():
        index = make_index(kind, points)
        return index.query(query, k=10)

    top = benchmark(run)
    assert len(top) == 10
