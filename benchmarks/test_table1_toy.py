"""Table I regeneration: the worked example and its three headline numbers.

Regenerates the paper's Table I values: the optimal arrangement (MaxSum
4.39, the bold entries), MinCostFlow-GEACC's 4.13 (Example 2) and
Greedy-GEACC's 4.28 (Example 3).
"""

import pytest

from repro.core.algorithms import GreedyGEACC, MinCostFlowGEACC, PruneGEACC
from repro.core.toy import (
    GREEDY_MAXSUM,
    MINCOSTFLOW_MAXSUM,
    OPTIMAL_MAXSUM,
    toy_instance,
)
from repro.experiments.reporting import format_table


def test_table1_reproduction(benchmark, record_series):
    instance = toy_instance()

    def run():
        return {
            "Prune-GEACC (optimal)": PruneGEACC().solve(instance),
            "Greedy-GEACC": GreedyGEACC().solve(instance),
            "MinCostFlow-GEACC": MinCostFlowGEACC().solve(instance),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, arrangement.max_sum(), str(arrangement.pairs())]
        for name, arrangement in results.items()
    ]
    record_series(
        "table1_toy",
        "== Table I: worked example ==\n"
        + format_table(["algorithm", "MaxSum", "pairs (event, user)"], rows)
        + f"\npaper: optimal {OPTIMAL_MAXSUM}, greedy {GREEDY_MAXSUM}, "
        f"mincostflow {MINCOSTFLOW_MAXSUM}",
    )
    assert results["Prune-GEACC (optimal)"].max_sum() == pytest.approx(OPTIMAL_MAXSUM)
    assert results["Greedy-GEACC"].max_sum() == pytest.approx(GREEDY_MAXSUM)
    assert results["MinCostFlow-GEACC"].max_sum() == pytest.approx(
        MINCOSTFLOW_MAXSUM
    )
