"""Fig. 4 columns 1-2: effect of event and user capacities.

Paper shapes: MaxSum grows with max c_v (events accommodate more
interested users) and with max c_u; growing c_v inflates MinCostFlow's
time (more flow to sweep) but leaves Greedy and the baselines flat.
"""

from repro.experiments.figures import (
    fig4_vary_event_capacity,
    fig4_vary_user_capacity,
)


def test_fig4_effect_of_event_capacity(benchmark, scale, record_series):
    sweep = benchmark.pedantic(
        lambda: fig4_vary_event_capacity(scale), rounds=1, iterations=1
    )
    record_series("fig4_col1_event_capacity", sweep.render())
    greedy = dict(sweep.series("greedy", "max_sum"))
    xs = sorted(greedy)
    assert greedy[xs[-1]] > greedy[xs[0]]
    mcf_time = dict(sweep.series("mincostflow", "seconds"))
    assert mcf_time[xs[-1]] > mcf_time[xs[0]]  # flow amount grows with c_v


def test_fig4_effect_of_user_capacity(benchmark, scale, record_series):
    sweep = benchmark.pedantic(
        lambda: fig4_vary_user_capacity(scale), rounds=1, iterations=1
    )
    record_series("fig4_col2_user_capacity", sweep.render())
    greedy = dict(sweep.series("greedy", "max_sum"))
    xs = sorted(greedy)
    assert greedy[xs[-1]] > greedy[xs[0]]
