"""Ablation: nearest-neighbour index choice inside Greedy-GEACC.

The paper leaves the k-NN oracle abstract (sigma(S)) and names iDistance
and the VA-file as options. This ablation runs Greedy with each of our
four backends on the same instance: identical MaxSum (they are all exact
oracles), different time profiles.
"""

import pytest

from repro.core.algorithms import GreedyGEACC
from repro.datagen.synthetic import generate_instance
from repro.experiments.metrics import measure
from repro.experiments.reporting import format_table

INDEX_KINDS = (None, "linear", "chunked", "kdtree", "idistance")


def test_ablation_index_backends(benchmark, scale, record_series):
    config = scale.default.with_(
        n_events=scale.scalability_v_grid[0],
        n_users=scale.scalability_u_grid[0],
        cv_high=scale.scalability_cv_max,
    )

    def run():
        rows = []
        for kind in INDEX_KINDS:
            instance = generate_instance(config, seed=0)  # fresh, lazy
            run_result = measure(
                lambda: GreedyGEACC(index_kind=kind).solve(instance),
                memory=False,
            )
            rows.append(
                (
                    kind or "auto(matrix)",
                    run_result.result.max_sum(),
                    run_result.seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ablation_index",
        "== Ablation: Greedy-GEACC NN-index backend ==\n"
        + format_table(["index", "MaxSum", "seconds"], rows),
    )
    reference = rows[0][1]
    for _, max_sum, _ in rows:
        assert max_sum == pytest.approx(reference)
