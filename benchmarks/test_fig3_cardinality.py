"""Fig. 3 columns 1-2: effect of |V| and |U| on all four algorithms.

Regenerates the MaxSum / running time / memory series. Expected shapes
(paper): Greedy wins MaxSum everywhere and is fastest; MinCostFlow beats
the random baselines on MaxSum but costs far more time; MaxSum grows
with |V| and |U| with diminishing returns as capacities saturate.
"""

from repro.experiments.figures import fig3_vary_events, fig3_vary_users


def test_fig3_effect_of_events(benchmark, scale, record_series):
    sweep = benchmark.pedantic(
        lambda: fig3_vary_events(scale), rounds=1, iterations=1
    )
    record_series("fig3_col1_events", sweep.render())
    greedy = dict(sweep.series("greedy", "max_sum"))
    random_v = dict(sweep.series("random-v", "max_sum"))
    xs = sorted(greedy)
    # Shape checks from the paper's discussion.
    assert greedy[xs[-1]] > greedy[xs[0]]          # MaxSum grows with |V|
    for x in xs:
        assert greedy[x] > random_v[x]             # greedy beats baselines
    greedy_time = dict(sweep.series("greedy", "seconds"))
    mcf_time = dict(sweep.series("mincostflow", "seconds"))
    assert mcf_time[xs[-1]] > greedy_time[xs[-1]]  # MCF much slower


def test_fig3_effect_of_users(benchmark, scale, record_series):
    sweep = benchmark.pedantic(
        lambda: fig3_vary_users(scale), rounds=1, iterations=1
    )
    record_series("fig3_col2_users", sweep.render())
    greedy = dict(sweep.series("greedy", "max_sum"))
    xs = sorted(greedy)
    assert greedy[xs[-1]] > greedy[xs[0]]
