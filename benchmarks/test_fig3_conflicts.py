"""Fig. 3 column 4: effect of the conflict-set size |CF|.

Paper shapes: MaxSum decreases as the conflict ratio grows; at CF = 0
MinCostFlow-GEACC is (optimal, hence) at least as good as Greedy; |CF|
barely affects running time.
"""

from repro.experiments.figures import fig3_vary_conflicts


def test_fig3_effect_of_conflicts(benchmark, scale, record_series):
    sweep = benchmark.pedantic(
        lambda: fig3_vary_conflicts(scale), rounds=1, iterations=1
    )
    record_series("fig3_col4_conflicts", sweep.render())
    greedy = dict(sweep.series("greedy", "max_sum"))
    mcf = dict(sweep.series("mincostflow", "max_sum"))
    ratios = sorted(greedy)
    assert greedy[ratios[0]] > greedy[ratios[-1]]      # MaxSum falls with |CF|
    assert mcf[0.0] >= greedy[0.0] - 1e-9              # MCF optimal at CF=0
    # With conflicts present, greedy overtakes MCF (the paper's headline).
    assert greedy[ratios[-1]] > mcf[ratios[-1]]
