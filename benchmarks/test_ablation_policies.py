"""Ablation (extension): dynamic arrangement policies vs clairvoyance.

Replays the same workload timeline under first-come-first-served and
periodic-rebatch policies and compares the achieved MaxSum to the
clairvoyant offline arrangement of the full instance.
"""

import numpy as np

from repro.core.algorithms import GreedyGEACC
from repro.datagen.synthetic import generate_instance
from repro.experiments.reporting import format_table
from repro.simulation import (
    GreedyArrivalPolicy,
    RebatchPolicy,
    Simulator,
    random_timeline,
)


def test_ablation_dynamic_policies(benchmark, scale, record_series):
    instance = generate_instance(scale.default, seed=3)
    timeline = random_timeline(instance, np.random.default_rng(3))
    simulator = Simulator(instance, timeline)

    def run():
        offline = GreedyGEACC().solve(instance).max_sum()
        rows = [("offline (clairvoyant greedy)", offline, 100.0)]
        for policy in (GreedyArrivalPolicy(), RebatchPolicy()):
            result = simulator.run(policy)
            rows.append(
                (
                    policy.name,
                    result.achieved_max_sum,
                    result.achieved_max_sum / offline * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ablation_policies",
        "== Ablation: dynamic arrangement policies ==\n"
        + format_table(["policy", "achieved MaxSum", "% of offline"], rows),
    )
    offline_value = rows[0][1]
    fcfs_value = rows[1][1]
    rebatch_value = rows[2][1]
    assert fcfs_value <= offline_value * 1.02
    assert rebatch_value >= fcfs_value * 0.95  # rebatching should not hurt
