"""Fig. 4 column 4: the real dataset (simulated Auckland, Table II).

Paper shape: the real-data curves mirror the synthetic ones -- MaxSum
falls as the conflict ratio rises, Greedy dominates.
"""

from repro.experiments.figures import fig4_real


def test_fig4_real_auckland(benchmark, scale, record_series):
    sweep = benchmark.pedantic(
        lambda: fig4_real(scale, city="auckland"), rounds=1, iterations=1
    )
    record_series("fig4_col4_real_auckland", sweep.render())
    greedy = dict(sweep.series("greedy", "max_sum"))
    random_u = dict(sweep.series("random-u", "max_sum"))
    ratios = sorted(greedy)
    assert greedy[ratios[0]] >= greedy[ratios[-1]]
    for ratio in ratios:
        assert greedy[ratio] > random_u[ratio]
