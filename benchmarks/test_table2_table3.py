"""Tables II-III regeneration: dataset statistics straight from the code."""

from repro.experiments.tables import (
    capacity_statistics,
    table2_real_datasets,
    table3_synthetic_config,
)


def test_table2_real_datasets(benchmark, record_series):
    text = benchmark.pedantic(table2_real_datasets, rounds=1, iterations=1)
    record_series("table2_real_datasets", text)
    assert "vancouver" in text
    assert "225" in text and "2012" in text  # Table II cardinalities
    assert "569" in text and "1500" in text


def test_table3_synthetic_config(benchmark, record_series):
    text = benchmark.pedantic(table3_synthetic_config, rounds=1, iterations=1)
    record_series(
        "table3_synthetic_config", text + "\n\n" + capacity_statistics()
    )
    assert "*100*" in text   # |V| default bolded
    assert "*1000*" in text  # |U| default
    assert "Zipf 1.3" in text
