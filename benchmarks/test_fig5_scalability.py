"""Fig. 5a-b: Greedy-GEACC scalability over large |V| x |U| grids.

Paper shape: Greedy's time and memory grow (near) linearly with data
size. Verified here by checking that time grows sub-quadratically when
|U| is scaled up at fixed |V|.
"""

from repro.experiments.figures import fig5_scalability


def test_fig5_greedy_scalability(benchmark, scale, record_series):
    sweep = benchmark.pedantic(
        lambda: fig5_scalability(scale), rounds=1, iterations=1
    )
    record_series("fig5ab_scalability", sweep.render())
    times = dict(sweep.series("greedy", "seconds"))
    for v in scale.scalability_v_grid:
        u_small = scale.scalability_u_grid[0]
        u_large = scale.scalability_u_grid[-1]
        growth = times[(v, u_large)] / max(times[(v, u_small)], 1e-9)
        size_ratio = u_large / u_small
        # Near-linear: time growth bounded by a quadratic blowup with slack.
        assert growth < size_ratio**2 * 5, (
            f"time grew x{growth:.1f} for a x{size_ratio} size increase at |V|={v}"
        )
