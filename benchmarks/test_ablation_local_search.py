"""Ablation (extension): local-search headroom above each base solver.

Measures how much MaxSum the add/swap local search recovers on top of
each base algorithm. Expected: large gains over the random baselines,
small over MinCostFlow, near-zero over Greedy (Lemma 5 already guarantees
maximality for adds).
"""

from repro.core.algorithms import LocalSearchGEACC, get_solver
from repro.datagen.synthetic import generate_instance
from repro.experiments.reporting import format_table

BASES = ("random-v", "random-u", "mincostflow", "greedy")


def test_ablation_local_search(benchmark, scale, record_series):
    instance = generate_instance(scale.default, seed=0)

    def run():
        rows = []
        for base_name in BASES:
            base = get_solver(base_name)
            baseline = base.solve(instance).max_sum()
            improved = LocalSearchGEACC(base=base).solve(instance).max_sum()
            gain = (improved - baseline) / baseline * 100 if baseline else 0.0
            rows.append((base_name, baseline, improved, gain))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ablation_local_search",
        "== Ablation: local-search post-improvement ==\n"
        + format_table(
            ["base", "MaxSum (base)", "MaxSum (+LS)", "gain %"], rows
        ),
    )
    by_base = {name: gain for name, _, _, gain in rows}
    for name, _, improved, _ in rows:
        base_value = dict((r[0], r[1]) for r in rows)[name]
        assert improved >= base_value - 1e-9
    # Random baselines leave far more headroom than greedy.
    assert by_base["random-v"] > by_base["greedy"]
