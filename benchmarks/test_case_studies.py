"""Case studies: the algorithms on structured (non-random) conflicts.

The paper evaluates on uniformly random conflict sets; these scenarios
have the conflict structure real deployments have (time slots, travel
reachability, weekly timetables). The headline findings should — and do —
transfer: Greedy first on MaxSum at near-baseline cost, MinCostFlow
second, baselines last.
"""

from repro.core.analysis import analyze
from repro.core.algorithms import get_solver
from repro.core.validation import validate_arrangement
from repro.datasets.scenarios import SCENARIOS, build_scenario
from repro.experiments.metrics import measure
from repro.experiments.reporting import format_table

CASE_SOLVERS = ("greedy", "mincostflow", "random-v")


def test_case_studies(benchmark, record_series):
    scenarios = [build_scenario(name, seed=0) for name in sorted(SCENARIOS)]

    def run():
        rows = []
        for scenario in scenarios:
            for solver_name in CASE_SOLVERS:
                solver = get_solver(solver_name)
                timing = measure(
                    lambda: solver.solve(scenario.instance), memory=False
                )
                validate_arrangement(timing.result)
                stats = analyze(timing.result)
                rows.append(
                    (
                        scenario.name,
                        solver_name,
                        stats.max_sum,
                        stats.users_matched,
                        stats.event_fill_mean,
                        timing.seconds,
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "case_studies",
        "== Case studies: structured-conflict scenarios ==\n"
        + format_table(
            ["scenario", "solver", "MaxSum", "users matched",
             "event fill", "seconds"],
            rows,
        ),
    )
    by_scenario: dict[str, dict[str, float]] = {}
    for scenario, solver, max_sum, *_ in rows:
        by_scenario.setdefault(scenario, {})[solver] = max_sum
    for scenario, values in by_scenario.items():
        assert values["greedy"] >= values["mincostflow"] - 1e-9, scenario
        assert values["greedy"] > values["random-v"], scenario
