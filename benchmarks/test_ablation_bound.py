"""Ablation (extension): the Lemma 6 bound vs the tightened bound.

The paper's pruning bound charges each unvisited event ``s_v * c_v``
(its best similarity times full capacity) and ignores user capacities
entirely. The ``tight`` bound adds top-k prefix sums on the event side
and a user-capacity cap on everything remaining, both still admissible.
Same optimum, dramatically fewer Search invocations -- this is what makes
the Fig. 5c-d instances tractable in pure Python.
"""

import pytest

from repro.core.algorithms import PruneGEACC
from repro.datagen.synthetic import generate_instance
from repro.experiments.metrics import measure
from repro.experiments.reporting import format_table


def test_ablation_bound_tightness(benchmark, scale, record_series):
    config = scale.default.with_(
        n_events=scale.fig6_n_events,
        n_users=scale.fig6_exhaustive_users,
        cv_high=10,
        cu_high=scale.fig6_cu_high,
    )
    instances = [generate_instance(config, seed) for seed in range(scale.repeats)]

    def run():
        rows = []
        for i, instance in enumerate(instances):
            for bound in ("paper", "tight"):
                solver = PruneGEACC(bound=bound)
                timing = measure(lambda: solver.solve(instance), memory=False)
                rows.append(
                    (
                        i,
                        bound,
                        timing.result.max_sum(),
                        solver.stats.invocations,
                        solver.stats.prune_count,
                        timing.seconds,
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ablation_bound",
        "== Ablation: Lemma 6 bound vs tightened bound ==\n"
        + format_table(
            ["seed", "bound", "MaxSum", "invocations", "prunes", "seconds"],
            rows,
        ),
    )
    by_seed: dict[int, dict[str, tuple]] = {}
    for seed, bound, max_sum, invocations, _, _ in rows:
        by_seed.setdefault(seed, {})[bound] = (max_sum, invocations)
    for seed, entry in by_seed.items():
        paper_sum, paper_inv = entry["paper"]
        tight_sum, tight_inv = entry["tight"]
        assert tight_sum == pytest.approx(paper_sum)   # same optimum
        assert tight_inv <= paper_inv                   # never more work
