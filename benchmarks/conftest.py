"""Shared benchmark fixtures.

Every figure benchmark regenerates its paper figure once (via
``benchmark.pedantic(rounds=1)``) at the grid scale selected by the
``REPRO_SCALE`` environment variable (default ``scaled``; ``paper`` for
the literal Table III grids, ``smoke`` for a seconds-long pass). The
rendered series -- the same rows the paper plots -- are printed and also
written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote
them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentScale, get_scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return get_scale(os.environ.get("REPRO_SCALE", "scaled"))


@pytest.fixture(scope="session")
def record_series():
    """Persist a rendered figure to benchmarks/results/ and echo it."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
