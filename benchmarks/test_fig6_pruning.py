"""Fig. 6a-d: effectiveness of the Lemma 6 pruning rule.

Paper shapes: the average depth at which Prune-GEACC prunes is small
relative to the maximum possible depth (6a); Prune-GEACC runs much faster
than exhaustive search (6b); it performs far fewer complete searches (6c)
and far fewer Search-GEACC invocations (6d).
"""

from repro.experiments.figures import fig6_pruning


def test_fig6_pruning_effectiveness(benchmark, scale, record_series):
    result = benchmark.pedantic(
        lambda: fig6_pruning(scale), rounds=1, iterations=1
    )
    record_series("fig6_pruning", result.render())
    by_key = {
        (r.cf_ratio, r.n_users, r.algorithm): r for r in result.records
    }
    exhaustive_keys = [k for k in by_key if k[2] == "exhaustive"]
    assert exhaustive_keys, "no exhaustive baselines ran"
    for cf_ratio, n_users, _ in exhaustive_keys:
        prune = by_key[(cf_ratio, n_users, "prune")]
        exhaustive = by_key[(cf_ratio, n_users, "exhaustive")]
        assert prune.invocations < exhaustive.invocations          # 6d
        assert prune.complete_searches < exhaustive.complete_searches  # 6c
        assert prune.seconds <= exhaustive.seconds * 1.5           # 6b
    # 6a: pruning fires well above the leaves -- the average pruned depth
    # is below the maximum recursion depth.
    for record in result.records:
        if record.algorithm == "prune" and record.average_prune_depth:
            assert record.average_prune_depth < record.max_depth
