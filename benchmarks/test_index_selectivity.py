"""Substrate benchmark: VA-File selectivity vs quantisation bits.

The VA-File's value proposition (its original VLDB'98 evaluation) is that
a few bits per dimension filter almost all points by bounds alone. This
bench regenerates that curve on the GEACC attribute distributions --
uniform (easy) and the Meetup-like sparse tags (harder, clustered) -- and
records the fraction of full vectors a 10-NN query must fetch.
"""

import numpy as np

from repro.datagen.distributions import sample_attributes
from repro.datasets.meetup import MeetupCityConfig, meetup_city
from repro.experiments.reporting import format_table
from repro.index.vafile import VAFileIndex

BITS_GRID = (2, 4, 6, 8)


def test_vafile_selectivity_curve(benchmark, record_series):
    rng = np.random.default_rng(0)
    uniform_points = sample_attributes(rng, 2000, 20, "uniform", 10_000.0)
    tag_points = meetup_city(MeetupCityConfig(city="singapore"), 0).user_attributes

    def run():
        rows = []
        for bits in BITS_GRID:
            uniform_index = VAFileIndex(uniform_points, bits=bits)
            tag_index = VAFileIndex(tag_points, bits=bits)
            uniform_sel = np.mean(
                [
                    uniform_index.selectivity(uniform_points[i], k=10)
                    for i in range(0, 50)
                ]
            )
            tag_sel = np.mean(
                [tag_index.selectivity(tag_points[i], k=10) for i in range(0, 50)]
            )
            rows.append((bits, uniform_sel, tag_sel))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "index_selectivity",
        "== VA-File selectivity (fraction of vectors fetched, 10-NN) ==\n"
        + format_table(
            ["bits/dim", "uniform d=20", "meetup tags d=20"], rows
        ),
    )
    uniform = {bits: sel for bits, sel, _ in rows}
    # More bits -> tighter bounds -> (weakly) fewer fetches.
    assert uniform[8] <= uniform[2] + 1e-9
    assert uniform[8] < 0.5  # the headline claim at reasonable precision
