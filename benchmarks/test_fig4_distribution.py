"""Fig. 4 column 3: effect of attribute/capacity distributions.

Paper shape: trends are similar across Uniform/Normal/Zipf attribute and
Uniform/Normal capacity generation -- the algorithm ordering (Greedy
first, MinCostFlow second, baselines last) is distribution-independent.
"""

from repro.experiments.figures import fig4_distributions


def test_fig4_effect_of_distribution(benchmark, scale, record_series):
    sweep = benchmark.pedantic(
        lambda: fig4_distributions(scale), rounds=1, iterations=1
    )
    record_series("fig4_col3_distribution", sweep.render())
    greedy = dict(sweep.series("greedy", "max_sum"))
    random_v = dict(sweep.series("random-v", "max_sum"))
    random_u = dict(sweep.series("random-u", "max_sum"))
    for combo in greedy:
        assert greedy[combo] > random_v[combo]
        assert greedy[combo] > random_u[combo]
