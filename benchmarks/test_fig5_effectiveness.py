"""Fig. 5c-d: approximate solutions vs the exact optimum.

Paper shapes: MinCostFlow equals the optimum at CF = 0; Greedy stays
within a few percent of the optimum across conflict ratios (far above its
1/(1 + max c_u) worst case); the approximations are much faster than the
exact solver. The exact oracle is the MILP solver (see EXPERIMENTS.md for
why the literal Prune-GEACC cannot play this role in pure Python;
Prune-GEACC's own behaviour is measured in Fig. 6 and the bound
ablation).
"""

import pytest

from repro.experiments.figures import fig5_effectiveness


def test_fig5_effectiveness(benchmark, scale, record_series):
    sweep = benchmark.pedantic(
        lambda: fig5_effectiveness(scale), rounds=1, iterations=1
    )
    record_series("fig5cd_effectiveness", sweep.render())
    optimum = dict(sweep.series("ilp", "max_sum"))
    greedy = dict(sweep.series("greedy", "max_sum"))
    mcf = dict(sweep.series("mincostflow", "max_sum"))
    assert mcf[0.0] == pytest.approx(optimum[0.0], abs=1e-6)  # exact at CF=0
    for ratio in optimum:
        assert optimum[ratio] >= greedy[ratio] - 1e-6
        assert optimum[ratio] >= mcf[ratio] - 1e-6
        assert greedy[ratio] >= 0.5 * optimum[ratio]  # far above worst case
    greedy_time = dict(sweep.series("greedy", "seconds"))
    exact_time = dict(sweep.series("ilp", "seconds"))
    assert sum(exact_time.values()) > sum(greedy_time.values())