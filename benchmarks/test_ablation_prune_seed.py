"""Ablation: the Greedy warm start in Prune-GEACC (Algorithm 3, line 1).

The paper seeds the incumbent with Greedy-GEACC "so that to prune poor
matchings from the first beginning". This ablation runs the
branch-and-bound with and without the seed: identical optimum, fewer (or
equal) Search invocations with the seed.
"""

import pytest

from repro.core.algorithms import PruneGEACC
from repro.datagen.synthetic import generate_instance
from repro.experiments.reporting import format_table


def test_ablation_greedy_seed(benchmark, scale, record_series):
    # Cold-start branch-and-bound explodes much earlier than warm-start;
    # use the Fig. 6 instance sizes, which are tuned for exactly that.
    config = scale.default.with_(
        n_events=scale.fig6_n_events,
        n_users=scale.fig6_exhaustive_users,
        cv_high=10,
        cu_high=scale.fig6_cu_high,
    )
    instances = [
        generate_instance(config, seed) for seed in range(scale.repeats)
    ]

    def run():
        rows = []
        for i, instance in enumerate(instances):
            seeded = PruneGEACC(greedy_seed=True)
            unseeded = PruneGEACC(greedy_seed=False)
            with_seed = seeded.solve(instance)
            without_seed = unseeded.solve(instance)
            rows.append(
                (
                    i,
                    with_seed.max_sum(),
                    without_seed.max_sum(),
                    seeded.stats.invocations,
                    unseeded.stats.invocations,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ablation_prune_seed",
        "== Ablation: Prune-GEACC greedy warm start ==\n"
        + format_table(
            ["seed", "MaxSum (warm)", "MaxSum (cold)",
             "invocations (warm)", "invocations (cold)"],
            rows,
        ),
    )
    for _, warm_sum, cold_sum, warm_inv, cold_inv in rows:
        assert warm_sum == pytest.approx(cold_sum)
        assert warm_inv <= cold_inv
