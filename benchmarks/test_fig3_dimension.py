"""Fig. 3 column 3: effect of attribute dimensionality d.

Paper shape: MaxSum decreases as d grows (the attribute space gets
sparser, average pairwise distance grows); d barely affects time/memory.
"""

from repro.experiments.figures import fig3_vary_dimension


def test_fig3_effect_of_dimension(benchmark, scale, record_series):
    sweep = benchmark.pedantic(
        lambda: fig3_vary_dimension(scale), rounds=1, iterations=1
    )
    record_series("fig3_col3_dimension", sweep.render())
    greedy = dict(sweep.series("greedy", "max_sum"))
    xs = sorted(greedy)
    assert greedy[xs[0]] > greedy[xs[-1]]  # MaxSum falls with d
