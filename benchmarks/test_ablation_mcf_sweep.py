"""Ablation: MinCostFlow-GEACC Delta-sweep early stop vs literal sweep.

Algorithm 1 sweeps Delta from Delta_min to Delta_max. Successive
shortest-path costs are non-decreasing, so the sweep's argmax is reached
the moment a path costs >= 1; our default engine stops there. This
ablation verifies the full literal sweep returns the same MaxSum and
costs at least as much time.
"""

import pytest

from repro.core.algorithms import MinCostFlowGEACC
from repro.datagen.synthetic import generate_instance
from repro.experiments.metrics import measure
from repro.experiments.reporting import format_table


def test_ablation_sweep_modes(benchmark, scale, record_series):
    instance = generate_instance(scale.default, seed=0)

    def run():
        early = measure(
            lambda: MinCostFlowGEACC(full_sweep=False).solve(instance),
            memory=False,
        )
        full = measure(
            lambda: MinCostFlowGEACC(full_sweep=True).solve(instance),
            memory=False,
        )
        return early, full

    early, full = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["early-stop", early.result.max_sum(), early.seconds],
        ["full-sweep", full.result.max_sum(), full.seconds],
    ]
    record_series(
        "ablation_mcf_sweep",
        "== Ablation: MCF Delta-sweep early stop ==\n"
        + format_table(["mode", "MaxSum", "seconds"], rows),
    )
    # The concavity argument says the two modes are equivalent in result;
    # time differences at small scales are noise, so only the MaxSum
    # equivalence is asserted (the table records both timings).
    assert early.result.max_sum() == pytest.approx(full.result.max_sum())
