"""Ablation (extension): the price-of-fairness frontier.

Sweeps the fairness discount of :class:`FairGreedyGEACC` and reports the
MaxSum / coverage / Gini trade-off against plain Greedy-GEACC.
"""

from repro.core.algorithms import GreedyGEACC
from repro.core.algorithms.fair_greedy import FairGreedyGEACC
from repro.core.analysis import analyze
from repro.datagen.synthetic import generate_instance
from repro.experiments.reporting import format_table

FAIRNESS_GRID = (0.0, 0.5, 1.0, 2.0, 5.0)


def test_ablation_fairness_frontier(benchmark, scale, record_series):
    instance = generate_instance(scale.default, seed=0)

    def run():
        rows = []
        baseline = analyze(GreedyGEACC().solve(instance))
        rows.append(
            ("greedy (paper)", baseline.max_sum, baseline.users_matched,
             baseline.satisfaction_gini)
        )
        for fairness in FAIRNESS_GRID:
            stats = analyze(FairGreedyGEACC(fairness=fairness).solve(instance))
            rows.append(
                (f"fair-greedy({fairness})", stats.max_sum,
                 stats.users_matched, stats.satisfaction_gini)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ablation_fairness",
        "== Ablation: price of fairness ==\n"
        + format_table(["policy", "MaxSum", "users matched", "Gini"], rows),
    )
    baseline_maxsum = rows[0][1]
    baseline_gini = rows[0][3]
    strongest = rows[-1]
    assert strongest[3] <= baseline_gini + 1e-9   # fairness reduces Gini
    assert strongest[1] >= baseline_maxsum * 0.6  # at bounded MaxSum cost