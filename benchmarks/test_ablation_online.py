"""Ablation (extension): the price of online arrangement.

Compares first-come-first-served online assignment (users arrive one at a
time, assignments irrevocable) against the offline algorithms on the same
instances, across several arrival orders.
"""

import numpy as np

from repro.core.algorithms import GreedyGEACC, OnlineGreedyGEACC
from repro.datagen.synthetic import generate_instance
from repro.experiments.reporting import format_table


def test_ablation_online_vs_offline(benchmark, scale, record_series):
    instance = generate_instance(scale.default, seed=0)
    rng = np.random.default_rng(0)

    def run():
        offline = GreedyGEACC().solve(instance).max_sum()
        rows = [("offline greedy", offline, 100.0)]
        for label, order in (
            ("online (index order)", None),
            ("online (shuffled A)", rng.permutation(instance.n_users)),
            ("online (shuffled B)", rng.permutation(instance.n_users)),
        ):
            online = OnlineGreedyGEACC(arrival_order=order).solve(instance)
            value = online.max_sum()
            rows.append((label, value, value / offline * 100))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ablation_online",
        "== Ablation: online vs offline arrangement ==\n"
        + format_table(["policy", "MaxSum", "% of offline greedy"], rows),
    )
    offline_value = rows[0][1]
    for _, value, _ in rows[1:]:
        assert value <= offline_value * 1.02  # online should not win
        assert value >= offline_value * 0.5   # but stays in the ballpark
